"""Vectorized batch kernels backing the fused execution path.

Sub-operators (`repro.core.operators`) define *what* each step computes
and what it costs; the kernels here define *how* the fused path computes
it over whole :class:`~repro.types.collections.RowVector` morsels at
once.  Kernels are pure numpy functions — they never touch the
execution context, charge costs, or pull from upstreams — so the same
kernel is reusable from any operator (and testable in isolation).
"""

from repro.core.kernels.hash_join import (
    HashJoinBuild,
    HashJoinSpec,
    mix_hash,
    outer_tail,
    probe_morsel,
)

__all__ = [
    "HashJoinBuild",
    "HashJoinSpec",
    "mix_hash",
    "outer_tail",
    "probe_morsel",
]
