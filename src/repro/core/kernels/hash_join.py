"""Vectorized single-key int64 hash-join kernel (fused BuildProbe path).

The build side is hashed with a multiplicative (Fibonacci) mix and sorted
by hash value once — a single stable ``np.argsort`` replaces the hash
table.  Each probe morsel hashes its keys, locates the candidate hash run
with two ``np.searchsorted`` calls, and resolves collision chains by
comparing the actual keys of the candidates.  All four probe policies
(inner / semi / anti / left_outer) share the same candidate machinery.

The stable sort keeps equal-hash candidates (and therefore equal-key
matches) in build-insertion order, so the emitted rows are bit-identical
to the scalar hash-table path's per-probe emission order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types.collections import RowVector, _column_dtype
from repro.types.tuples import TupleType

__all__ = [
    "HashJoinBuild",
    "HashJoinSpec",
    "emit_probe_hits",
    "mix_hash",
    "outer_tail",
    "probe_morsel",
]

#: Fibonacci multiplier of the build/probe hash (the same constant family
#: as :class:`~repro.core.functions.HashPartition`).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_SHIFT = np.uint64(33)


def mix_hash(keys: np.ndarray) -> np.ndarray:
    """Multiplicative hash of an int64 key column (wrapping uint64 math)."""
    return (keys.astype(np.uint64) * _HASH_MULTIPLIER) >> _HASH_SHIFT


@dataclass(frozen=True)
class HashJoinSpec:
    """Shape of one join: policy, key, and column layout of both sides."""

    join_type: str
    output_type: TupleType
    key: str
    left_rest_pos: tuple[int, ...]
    right_rest_pos: tuple[int, ...]
    right_type: TupleType
    outer_fill: object


@dataclass
class HashJoinBuild:
    """Build-side state: the sorted-by-hash view of the left input."""

    left: RowVector
    build_keys: np.ndarray
    order: np.ndarray
    sorted_hash: np.ndarray
    sorted_keys: np.ndarray
    #: Build rows hit by some probe so far (left_outer bookkeeping).
    matched: np.ndarray

    @classmethod
    def from_rows(cls, left: RowVector, key: str) -> "HashJoinBuild":
        build_keys = left.column(key)
        build_hash = mix_hash(build_keys)
        order = np.argsort(build_hash, kind="stable")
        return cls(
            left=left,
            build_keys=build_keys,
            order=order,
            sorted_hash=build_hash[order],
            sorted_keys=build_keys[order],
            matched=np.zeros(len(left), dtype=bool),
        )


def probe_morsel(
    build: HashJoinBuild, right: RowVector, spec: HashJoinSpec
) -> RowVector:
    """Probe one right-side morsel against the sorted build side."""
    right_keys = right.column(spec.key)
    n_right = len(right)
    probe_hash = mix_hash(right_keys)
    lo = np.searchsorted(build.sorted_hash, probe_hash, side="left")
    hi = np.searchsorted(build.sorted_hash, probe_hash, side="right")
    counts = hi - lo
    total = int(counts.sum())
    # Candidate expansion: for probe row i, the run of sorted build
    # positions [lo[i], hi[i]) that share its hash value.
    right_cand = np.repeat(np.arange(n_right), counts)
    offsets = np.repeat(hi - np.cumsum(counts), counts)
    cand_pos = np.arange(total) + offsets
    # Collision chains: candidates share the hash, not necessarily the key.
    good = build.sorted_keys[cand_pos] == right_keys[right_cand]
    return emit_probe_hits(build, right, right_keys, spec, cand_pos[good], right_cand[good])


def emit_probe_hits(
    build,
    right: RowVector,
    right_keys: np.ndarray,
    spec: HashJoinSpec,
    hit_pos: np.ndarray,
    hit_right: np.ndarray,
) -> RowVector:
    """Assemble one morsel's output rows from resolved candidate hits.

    Shared by the sorted-hash and radix kernels: ``hit_pos`` indexes the
    build side in *sorted position* (``build.order[hit_pos]`` recovers the
    original row), ``hit_right`` indexes the probe morsel, and both are
    ordered probe-row-major with matches in build-insertion order — the
    emission contract all join paths are bit-identical under.
    """
    if spec.join_type in ("inner", "left_outer"):
        if spec.join_type == "left_outer":
            build.matched[hit_pos] = True
        left_idx = build.order[hit_pos]
        columns: list[np.ndarray] = [right_keys[hit_right]]
        columns += [build.left.columns[p][left_idx] for p in spec.left_rest_pos]
        columns += [right.columns[p][hit_right] for p in spec.right_rest_pos]
        return RowVector(spec.output_type, columns)

    has_hit = np.zeros(len(right), dtype=bool)
    has_hit[hit_right] = True
    sel = np.flatnonzero(has_hit if spec.join_type == "semi" else ~has_hit)
    columns = [right_keys[sel]]
    columns += [right.columns[p][sel] for p in spec.right_rest_pos]
    return RowVector(spec.output_type, columns)


def outer_tail(build: HashJoinBuild, spec: HashJoinSpec) -> RowVector:
    """Unmatched build rows padded with ``outer_fill`` on the right."""
    left_idx = np.sort(build.order[np.flatnonzero(~build.matched)])
    n = len(left_idx)
    columns: list[np.ndarray] = [build.build_keys[left_idx]]
    columns += [build.left.columns[p][left_idx] for p in spec.left_rest_pos]
    for p in spec.right_rest_pos:
        name = spec.right_type.field_names[p]
        dtype = _column_dtype(spec.right_type[name])
        columns.append(np.full(n, spec.outer_fill, dtype=dtype))
    return RowVector(spec.output_type, columns)
