"""First-class function objects passed to data-processing sub-operators.

The paper's sub-operators are parametrized by UDFs that the query compiler
lowers to LLVM IR and inlines into pipelines.  Here, a function object
bundles the scalar (row-at-a-time) implementation with an optional
vectorized (numpy, column-at-a-time) implementation; the fused execution
mode uses the vectorized form when present, which plays the role of the
inlined, compiled UDF.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import TypeCheckError
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = [
    "TupleFunction",
    "ParamTupleFunction",
    "Predicate",
    "PartitionFunction",
    "RadixPartition",
    "HashPartition",
    "CallablePartition",
    "ReduceFunction",
    "field_sum",
]


class TupleFunction:
    """A UDF for ``Map``: one input tuple in, one output tuple out.

    Args:
        fn: Scalar implementation, ``fn(row) -> row``.
        output_type: Either a fixed :class:`TupleType` or a callable
            ``input_type -> output_type`` (most operators' types depend on
            their upstream types; paper Section 3.2).
        vectorized: Optional columnar implementation,
            ``vectorized(columns) -> columns`` over numpy arrays.
    """

    def __init__(
        self,
        fn: Callable[[tuple], tuple],
        output_type: TupleType | Callable[[TupleType], TupleType],
        vectorized: Callable[[tuple[np.ndarray, ...]], tuple[np.ndarray, ...]] | None = None,
    ) -> None:
        self.fn = fn
        self._output_type = output_type
        self.vectorized = vectorized

    def output_type_for(self, input_type: TupleType) -> TupleType:
        if callable(self._output_type):
            return self._output_type(input_type)
        return self._output_type

    def __call__(self, row: tuple) -> tuple:
        return self.fn(row)

    def apply_batch(self, batch: RowVector, output_type: TupleType) -> RowVector:
        """Columnar application; falls back to a scalar loop if needed."""
        if self.vectorized is not None:
            return RowVector(output_type, list(self.vectorized(batch.columns)))
        return RowVector.from_rows(output_type, (self.fn(r) for r in batch.iter_rows()))


class ParamTupleFunction:
    """A UDF for ``ParametrizedMap``: ``fn(param_tuple, row) -> row``.

    The parameter tuple comes from a dedicated upstream and is fixed for the
    whole stream — e.g. the network partition ID used to recover compressed
    key bits (paper Section 4.1.2).
    """

    def __init__(
        self,
        fn: Callable[[tuple, tuple], tuple],
        output_type: TupleType | Callable[[TupleType], TupleType],
        vectorized: Callable[[tuple, tuple[np.ndarray, ...]], tuple[np.ndarray, ...]] | None = None,
    ) -> None:
        self.fn = fn
        self._output_type = output_type
        self.vectorized = vectorized

    def output_type_for(self, input_type: TupleType) -> TupleType:
        if callable(self._output_type):
            return self._output_type(input_type)
        return self._output_type

    def __call__(self, param: tuple, row: tuple) -> tuple:
        return self.fn(param, row)

    def apply_batch(self, param: tuple, batch: RowVector, output_type: TupleType) -> RowVector:
        if self.vectorized is not None:
            return RowVector(output_type, list(self.vectorized(param, batch.columns)))
        return RowVector.from_rows(
            output_type, (self.fn(param, r) for r in batch.iter_rows())
        )


class Predicate:
    """A boolean UDF for ``Filter``."""

    def __init__(
        self,
        fn: Callable[[tuple], bool],
        vectorized: Callable[[tuple[np.ndarray, ...]], np.ndarray] | None = None,
    ) -> None:
        self.fn = fn
        self.vectorized = vectorized

    def __call__(self, row: tuple) -> bool:
        return bool(self.fn(row))

    def mask(self, batch: RowVector) -> np.ndarray:
        """Boolean selection mask over a batch."""
        if self.vectorized is not None:
            return np.asarray(self.vectorized(batch.columns), dtype=bool)
        return np.fromiter(
            (bool(self.fn(r)) for r in batch.iter_rows()), dtype=bool, count=len(batch)
        )


class PartitionFunction:
    """Maps tuples to bucket/partition ids in ``[0, n_partitions)``.

    Used by ``LocalHistogram``, ``LocalPartitioning``, ``MpiExchange``
    (paper Section 3.3): all three share one function object, which is what
    guarantees the histogram describes exactly the partitions the exchange
    will write.
    """

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 1:
            raise TypeCheckError(f"need >= 1 partition, got {n_partitions}")
        self.n_partitions = n_partitions

    def __call__(self, row: tuple) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.n_partitions})"

    def map_batch(self, batch: RowVector) -> np.ndarray:
        """Vectorized bucket ids for a whole batch."""
        return np.fromiter(
            (self(r) for r in batch.iter_rows()), dtype=np.int64, count=len(batch)
        )


class RadixPartition(PartitionFunction):
    """Radix partitioning on the bits of an integer key field.

    ``partition = (key >> shift) & (n_partitions - 1)`` with an identity
    hash, exactly the scheme whose dropped bits the compression of
    Section 4.1.1 recovers.  ``n_partitions`` must be a power of two.
    """

    def __init__(self, key_field: str, n_partitions: int, shift: int = 0) -> None:
        super().__init__(n_partitions)
        if n_partitions & (n_partitions - 1):
            raise TypeCheckError(
                f"radix partitioning needs a power-of-two fan-out, got {n_partitions}"
            )
        self.key_field = key_field
        self.shift = shift
        self.mask = n_partitions - 1
        self._key_pos: int | None = None

    def bind(self, input_type: TupleType) -> "RadixPartition":
        """Resolve the key field position against the operator's input type."""
        self._key_pos = input_type.position(self.key_field)
        return self

    @property
    def fanout_bits(self) -> int:
        return self.n_partitions.bit_length() - 1

    def __repr__(self) -> str:
        return (
            f"RadixPartition({self.key_field!r}, {self.n_partitions}, "
            f"shift={self.shift})"
        )

    def __call__(self, row: tuple) -> int:
        if self._key_pos is None:
            raise TypeCheckError("RadixPartition used before bind()")
        return (row[self._key_pos] >> self.shift) & self.mask

    def map_batch(self, batch: RowVector) -> np.ndarray:
        keys = batch.column(self.key_field)
        return (keys >> self.shift) & self.mask


class HashPartition(PartitionFunction):
    """Multiplicative (Fibonacci) hashing of an integer key field.

    ``salt`` selects an independent hash function, so that e.g. the local
    partitioning pass is uncorrelated with the network partitioning pass
    (correlated passes would leave most local partitions empty).
    """

    _MULTIPLIERS = (0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)

    def __init__(self, key_field: str, n_partitions: int, salt: int = 0) -> None:
        super().__init__(n_partitions)
        self.key_field = key_field
        self.salt = salt
        self._multiplier = self._MULTIPLIERS[salt % len(self._MULTIPLIERS)]
        self._key_pos: int | None = None

    def bind(self, input_type: TupleType) -> "HashPartition":
        self._key_pos = input_type.position(self.key_field)
        return self

    def __repr__(self) -> str:
        return (
            f"HashPartition({self.key_field!r}, {self.n_partitions}, "
            f"salt={self.salt})"
        )

    def _hash(self, keys: np.ndarray) -> np.ndarray:
        mixed = (keys.astype(np.uint64) * np.uint64(self._multiplier)) >> np.uint64(33)
        return (mixed % np.uint64(self.n_partitions)).astype(np.int64)

    def __call__(self, row: tuple) -> int:
        if self._key_pos is None:
            raise TypeCheckError("HashPartition used before bind()")
        # Pure-int replica of _hash (wrapping uint64 multiply): the scalar
        # path must agree bit-for-bit with the vectorized one without
        # paying a one-element-array allocation per row.
        key = row[self._key_pos] & 0xFFFFFFFFFFFFFFFF
        mixed = (key * self._multiplier) & 0xFFFFFFFFFFFFFFFF
        return (mixed >> 33) % self.n_partitions

    def map_batch(self, batch: RowVector) -> np.ndarray:
        return self._hash(batch.column(self.key_field))


class CallablePartition(PartitionFunction):
    """Adapter for an arbitrary Python bucket function (no fast path)."""

    def __init__(self, fn: Callable[[tuple], int], n_partitions: int) -> None:
        super().__init__(n_partitions)
        self.fn = fn

    def __call__(self, row: tuple) -> int:
        bucket = self.fn(row)
        if not 0 <= bucket < self.n_partitions:
            raise TypeCheckError(
                f"bucket function returned {bucket}, outside [0, {self.n_partitions})"
            )
        return bucket


class ReduceFunction:
    """An associative, commutative combiner for ``Reduce``/``ReduceByKey``.

    Args:
        fn: Scalar combiner ``fn(acc_tuple, row_tuple) -> tuple`` over the
            *value* tuples (key stripped, per the paper's ReduceByKey rule).
        vectorized_sum_fields: If all the function does is sum a set of
            numeric fields, name them here and the fused path uses
            ``np.add.reduceat``-style segment sums instead of a Python fold.
    """

    def __init__(
        self,
        fn: Callable[[tuple, tuple], tuple],
        vectorized_sum_fields: Sequence[str] | None = None,
    ) -> None:
        self.fn = fn
        self.vectorized_sum_fields = (
            tuple(vectorized_sum_fields) if vectorized_sum_fields else None
        )

    def __call__(self, acc: tuple, row: tuple) -> tuple:
        return self.fn(acc, row)


def field_sum(*fields: str) -> ReduceFunction:
    """A ReduceFunction that sums the named fields position-wise.

    The value tuples handed to the combiner must consist of exactly these
    fields (in order), which is how the paper's GROUP BY and the TPC-H
    post-aggregations use it.
    """
    if not fields:
        raise TypeCheckError("field_sum needs at least one field")

    def fn(acc: tuple, row: tuple) -> tuple:
        return tuple(a + b for a, b in zip(acc, row))

    return ReduceFunction(fn, vectorized_sum_fields=fields)
