"""Execution contexts: what flows *alongside* the data path.

An :class:`ExecutionContext` carries everything a sub-operator needs beyond
its upstream iterators: the simulated clock and cost model to charge, the
communicator when running inside an MPI rank, the execution mode
(fused vs interpreted — the JIT-compilation analogue), and the parameter
stack that connects ``NestedMap`` invocations to the ``ParameterLookup``
operators of their nested plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.options import JOIN_KERNELS, MODES, RunOptions
from repro.errors import ExecutionError
from repro.mpi.clock import SimClock
from repro.mpi.cluster import RankContext
from repro.mpi.comm import SimComm
from repro.mpi.costmodel import DEFAULT_COST_MODEL, CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sanitizer import Sanitizer
    from repro.faults.checkpoint import CheckpointStore
    from repro.faults.injector import FaultInjector
    from repro.faults.policy import FaultPolicy
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.profile import Profiler
    from repro.observability.tracing import TraceContext

__all__ = ["ExecutionContext", "ExecutionMode"]

#: Execution modes. ``fused`` models JiT-compiled pipelines (vectorized
#: kernels, low abstraction overhead); ``interpreted`` models a pure
#: tuple-at-a-time Volcano interpreter without compilation.
ExecutionMode = str

_MODES = MODES

#: Valid settings of :attr:`ExecutionContext.join_kernel`.
_JOIN_KERNELS = JOIN_KERNELS

#: Morsel auto-tuning bounds: never below a vectorization-worthy batch,
#: never above the PR-2 default that every existing plan was sized for.
_MORSEL_MIN_ROWS = 1 << 10
_MORSEL_MAX_ROWS = 1 << 16


@dataclass
class ExecutionContext:
    """Mutable per-execution state shared by all operators of one plan run."""

    cost: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    clock: SimClock = field(default_factory=SimClock)
    mode: ExecutionMode = "fused"
    rank_ctx: RankContext | None = None
    #: Run the static analyzer (``repro.analysis``) over every plan handed
    #: to ``execute`` with this context, rejecting plans with
    #: error-severity diagnostics before any data flows.
    verify_plans: bool = False
    #: Target rows per :class:`~repro.types.collections.RowVector` morsel on
    #: the batch data path.  Bounds the memory footprint of operators whose
    #: ``batches()`` falls back to buffering ``rows()``; scans and kernels
    #: use it as their output granularity.  ``None`` — the default — lets
    #: :meth:`morsel_rows_for` auto-tune the granularity per operator from
    #: its row width and the cost model's cache budget; an explicit value
    #: pins every operator to that size.
    morsel_rows: int | None = None
    #: Which vectorized join kernel ``BuildProbe.batches`` runs: ``"auto"``
    #: (size/skew heuristic, the default), ``"sorted"`` (always the
    #: sorted-hash kernel), or ``"radix"`` (force the radix direct-address
    #: kernel whenever its hard memory cap allows).
    join_kernel: str = "auto"
    #: Per-operator profiler (:mod:`repro.observability`).  ``None`` — the
    #: default — disables all span recording; the data path then pays one
    #: attribute read per operator activation and allocates nothing.
    profiler: "Profiler | None" = None
    #: Work-accounting metrics registry (:mod:`repro.observability.metrics`).
    #: ``None`` — the default — disables all metric recording; the data
    #: path then pays one attribute read per operator activation.
    metrics: "MetricsRegistry | None" = None
    #: Runtime sanitizer (:mod:`repro.analysis.sanitizer`) driving the
    #: MOD05x substrate checks; ``None`` — the default — keeps every
    #: sanitizer hook cold (one attribute read per operator activation).
    sanitizer: "Sanitizer | None" = None
    #: Fault-injection policy for this execution (:mod:`repro.faults`).
    #: ``None`` — the default — keeps the fault paths entirely cold.
    faults: "FaultPolicy | None" = None
    #: The per-execution injector realizing :attr:`faults`; created lazily
    #: by ``execute`` so its crash ledger and job counter span every MPI
    #: job (and recovery attempt) of one plan run.
    fault_injector: "FaultInjector | None" = None
    #: Worker-side checkpoint store of the enclosing MPI stage; deposits
    #: and lookups happen at materialization points
    #: (:class:`~repro.core.operators.materialize.MaterializeRowVector`).
    checkpoints: "CheckpointStore | None" = None
    #: Parameter bindings of active NestedMap invocations, keyed by slot id.
    _params: dict[int, tuple] = field(default_factory=dict)
    #: Bumped on every NestedMap invocation; invalidates pipeline caches.
    invocation_epoch: int = 0
    #: Materialized results of shared (multi-consumer) operators, keyed by
    #: the wrapped operator's id; see ``repro.core.plan.SharedScan``.
    shared_cache: dict[int, tuple] = field(default_factory=dict)
    #: The :class:`~repro.core.options.RunOptions` this execution was
    #: launched with, when known.  Recovery layers (stage re-execution,
    #: the sanitizer replay) derive their worker/replay contexts from
    #: :meth:`run_options` rather than copying knob fields by hand, so a
    #: knob added to ``RunOptions`` can never silently drop on a retry.
    options: RunOptions | None = None
    #: Causal trace context of the serving attempt this execution belongs
    #: to (:mod:`repro.observability.tracing`); ``None`` outside serving.
    #: Stage recovery derives per-rank child contexts from it and stamps
    #: fault/recovery events as they surface — the data path never reads
    #: it, so tracing costs nothing per tuple.
    trace: "TraceContext | None" = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ExecutionError(f"unknown execution mode {self.mode!r}")
        if self.morsel_rows is not None and self.morsel_rows < 1:
            raise ExecutionError(
                f"morsel size must be at least one row, got {self.morsel_rows}"
            )
        if self.join_kernel not in _JOIN_KERNELS:
            raise ExecutionError(
                f"unknown join kernel {self.join_kernel!r}; "
                f"supported: {_JOIN_KERNELS}"
            )

    # -- distributed facets -------------------------------------------------

    @property
    def comm(self) -> SimComm:
        """The rank's communicator; only available inside an MPI worker."""
        if self.rank_ctx is None:
            raise ExecutionError(
                "this operator needs an MPI cluster; wrap the plan in MpiExecutor"
            )
        return self.rank_ctx.comm

    @property
    def rank(self) -> int:
        return self.rank_ctx.rank if self.rank_ctx is not None else 0

    @property
    def n_ranks(self) -> int:
        return self.rank_ctx.n_ranks if self.rank_ctx is not None else 1

    # -- morsel granularity ---------------------------------------------------

    def morsel_rows_for(self, element_type) -> int:
        """Rows per morsel for an operator producing ``element_type``.

        An explicit :attr:`morsel_rows` pins the size.  Otherwise the size
        is tuned so one morsel of this row width fills half the machine's
        L3 cache (leaving the other half for the consumer's state), clamped
        to sane bounds — wide rows get smaller morsels, narrow rows larger
        ones, and the batch working set stays cache-resident either way.
        """
        if self.morsel_rows is not None:
            return self.morsel_rows
        row_bytes = max(1, element_type.row_size_bytes())
        budget = self.cost.machine.l3_cache_bytes // 2
        return max(_MORSEL_MIN_ROWS, min(_MORSEL_MAX_ROWS, budget // row_bytes))

    # -- RunOptions integration ----------------------------------------------

    @classmethod
    def from_options(cls, options: RunOptions) -> "ExecutionContext":
        """A fresh driver context configured entirely from ``options``."""
        return cls(
            cost=options.cost_model,
            mode=options.mode,
            verify_plans=bool(options.verify_plans),
            morsel_rows=options.morsel_rows,
            join_kernel=options.join_kernel,
            faults=options.faults,
            options=options,
        )

    def run_options(self) -> RunOptions:
        """The :class:`RunOptions` governing this execution.

        Returns the options the execution was launched with when they are
        known; otherwise reconstructs them from the context's own knob
        fields (the path for hand-built contexts).  Either way this is the
        *single* source recovery layers derive worker/replay knobs from.
        """
        if self.options is not None:
            return self.options
        return RunOptions(
            mode=self.mode,
            cost_model=self.cost,
            verify_plans=self.verify_plans or None,
            profile=self.profiler is not None,
            metrics=self.metrics is not None,
            faults=self.faults,
            sanitize=self.sanitizer is not None,
            join_kernel=self.join_kernel,
            morsel_rows=self.morsel_rows,
        )

    @classmethod
    def for_rank(
        cls,
        rank_ctx: RankContext,
        mode: ExecutionMode = "fused",
        morsel_rows: int | None = None,
        profiler: "Profiler | None" = None,
        metrics: "MetricsRegistry | None" = None,
        checkpoints: "CheckpointStore | None" = None,
        sanitizer: "Sanitizer | None" = None,
        join_kernel: str = "auto",
        options: RunOptions | None = None,
        trace: "TraceContext | None" = None,
    ) -> "ExecutionContext":
        """The context a worker uses to execute a nested plan on its rank.

        When ``options`` is given, its :meth:`RunOptions.worker_knobs`
        override the individual knob arguments — the whole set at once, so
        callers rebuilding worker contexts (stage recovery, replays) cannot
        forward some knobs and forget others.  ``trace`` is the rank's
        child span of the enclosing attempt's trace context.
        """
        knobs = {"mode": mode, "morsel_rows": morsel_rows, "join_kernel": join_kernel}
        if options is not None:
            knobs.update(options.worker_knobs())
        return cls(
            cost=rank_ctx.cost,
            clock=rank_ctx.clock,
            rank_ctx=rank_ctx,
            profiler=profiler,
            metrics=metrics,
            checkpoints=checkpoints,
            sanitizer=sanitizer,
            options=options,
            trace=trace,
            **knobs,
        )

    # -- cost charging --------------------------------------------------------

    def overhead_for(self, pipeline_size: int) -> float:
        """Execution-layer multiplier on CPU work for one operator.

        Mirrors the paper's observation (§5.1): operators isolated in small
        pipelines compile to code as good as (or better than) hand-written
        loops, while operators buried in long pipelines keep some abstraction
        overhead that the compiler cannot remove.
        """
        if self.mode == "interpreted":
            return self.cost.interpreted_overhead
        if pipeline_size <= self.cost.small_pipeline_max_ops:
            return self.cost.small_pipeline_overhead
        return self.cost.fused_overhead

    def set_phase(self, phase: str) -> None:
        """Attribute subsequent clock advances (incl. comm costs) to ``phase``."""
        self.clock.phase = phase

    def charge_cpu(self, op, kind: str, tuples: int) -> None:
        """Charge per-tuple CPU work of class ``kind`` on behalf of ``op``.

        The operator supplies the phase label and its pipeline size (which
        determines the abstraction-overhead multiplier).
        """
        if tuples <= 0:
            return
        self.set_phase(op.assigned_phase)
        seconds = self.cost.cpu_cost(kind, tuples, self.overhead_for(op.pipeline_size))
        self.clock.advance(seconds, jitter=True)

    def charge_materialize(self, op, payload_bytes: int) -> None:
        if payload_bytes > 0:
            self.set_phase(op.assigned_phase)
            self.clock.advance(self.cost.materialize_cost(payload_bytes), jitter=True)

    # -- memory accounting ----------------------------------------------------

    def account_memory(self, payload_bytes: int) -> None:
        """Record that a materialized collection of ``payload_bytes`` exists.

        The storage layer calls this wherever a whole ``RowVector`` is
        resident (materialization points, checkpoint re-reads); with
        metrics enabled it feeds the ``materialized_bytes`` counter and
        the ``rowvector_peak_bytes`` high-water gauge, otherwise it is a
        single attribute read.
        """
        metrics = self.metrics
        if metrics is not None and payload_bytes > 0:
            metrics.account_memory(payload_bytes)

    # -- nested-plan parameters -----------------------------------------------

    def push_parameter(self, slot_id: int, value: tuple) -> None:
        if slot_id in self._params:
            raise ExecutionError(f"parameter slot {slot_id} is already bound")
        self._params[slot_id] = value
        self.invocation_epoch += 1

    def pop_parameter(self, slot_id: int) -> None:
        if slot_id not in self._params:
            raise ExecutionError(f"parameter slot {slot_id} is not bound")
        binding = (slot_id, id(self._params[slot_id]))
        del self._params[slot_id]
        # Drop shared-result caches that depended on this binding: the bound
        # tuple may be garbage collected and its id reused, which would
        # otherwise let a later invocation read a stale materialization.
        stale = [
            key
            for key, (binding_key, _vector) in self.shared_cache.items()
            if binding in binding_key
        ]
        for key in stale:
            del self.shared_cache[key]

    def single_binding_slot(self) -> int | None:
        """Slot id of the only active parameter binding, else ``None``.

        Checkpointing uses this to recognize the worker's *top scope*:
        exactly the MPI executor's own input binding active, no nested
        ``NestedMap`` invocation on the stack.
        """
        if len(self._params) != 1:
            return None
        return next(iter(self._params))

    def parameter_binding_key(self) -> tuple:
        """Identity of the current nested-plan bindings, for result caching."""
        return tuple(sorted((k, id(v)) for k, v in self._params.items()))

    def lookup_parameter(self, slot_id: int) -> tuple:
        try:
            return self._params[slot_id]
        except KeyError:
            raise ExecutionError(
                f"ParameterLookup for slot {slot_id} executed outside its NestedMap"
            ) from None
