"""The distributed GROUP BY as a sub-operator plan (paper Fig. 5, §4.3).

Re-uses the join's building blocks — histograms, exchange, nested local
partitioning, compression — and differs only at the leaves: instead of a
``BuildProbe``, each local partition is aggregated by a ``ReduceByKey``
(fed by the decompressing ``ParametrizedMap``), and a post-aggregating
``ReduceByKey`` is inserted between every ``RowScan`` and
``MaterializeRowVector`` on the way out of each nesting level, plus a final
post-aggregation on the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compression import RadixCompression
from repro.core.executor import ExecutionReport, execute
from repro.core.options import UNSET, RunOptions, coerce_options
from repro.core.functions import (
    ParamTupleFunction,
    RadixPartition,
    ReduceFunction,
    field_sum,
)
from repro.core.operator import Operator
from repro.core.operators import (
    CartesianProduct,
    NicPartialAggregate,
    LocalHistogram,
    LocalPartitioning,
    MaterializeRowVector,
    MpiExchange,
    MpiExecutor,
    MpiHistogram,
    NestedMap,
    ParameterLookup,
    ParameterSlot,
    ParametrizedMap,
    Projection,
    ReduceByKey,
    RowScan,
)
from repro.errors import TypeCheckError
from repro.mpi.cluster import SimCluster
from repro.types.atoms import INT64
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["DistributedGroupByPlan", "build_distributed_groupby"]


@dataclass
class DistributedGroupByPlan:
    """A ready-to-run distributed GROUP BY plan plus its binding points."""

    root: Operator
    slot: ParameterSlot
    executor: MpiExecutor
    output_type: TupleType
    cluster: SimCluster

    def run(
        self,
        table: RowVector,
        options: RunOptions | None = None,
        *,
        mode=UNSET,
        profile=UNSET,
        metrics=UNSET,
        faults=UNSET,
        sanitize=UNSET,
    ) -> ExecutionReport:
        options = coerce_options(
            options, "DistributedGroupByPlan.run()", mode=mode, profile=profile,
            metrics=metrics, faults=faults, sanitize=sanitize,
        )
        return execute(self.root, params={self.slot: (table,)}, options=options)

    @staticmethod
    def groups(result: ExecutionReport) -> RowVector:
        """Extract the materialized ⟨key, aggregate⟩ output."""
        (row,) = result.rows
        return row[0]


def build_distributed_groupby(
    cluster: SimCluster,
    input_type: TupleType,
    key: str = "key",
    network_fanout: int | None = None,
    local_fanout: int = 16,
    key_bits: int = 27,
    compression: bool = True,
    reduce_fn: ReduceFunction | None = None,
    offload: str | None = None,
) -> DistributedGroupByPlan:
    """Assemble the Figure 5 plan for a ⟨key, value⟩ relation.

    Args:
        cluster: Simulated cluster for the data-parallel part.
        input_type: Two INT64 fields, the group key and the value.
        key: Name of the group-by attribute.
        network_fanout / local_fanout: Radix fan-outs (powers of two);
            network fan-out defaults to the cluster size.
        key_bits: Dense-domain width for the compression scheme.
        compression: Halve network volume by packing ⟨key, value⟩ (the
            paper notes this is not required for correctness but crucial
            for performance).
        reduce_fn: Aggregation; defaults to summing the value field.
        offload: Pre-aggregate (combine) each rank's stream before the
            exchange: ``"host"`` uses a plain ReduceByKey on the CPU,
            ``"nic"`` uses the smart-NIC offload sub-operator (extension;
            the paper's §1 future-work scenario), ``None`` ships raw
            tuples as in Figure 5.
    """
    if offload not in (None, "host", "nic"):
        raise TypeCheckError(f"unknown offload target {offload!r}")
    if key not in input_type:
        raise TypeCheckError(f"input {input_type!r} lacks group key {key!r}")
    values = [f.name for f in input_type if f.name != key]
    if len(values) != 1 or any(input_type[f] != INT64 for f in input_type.field_names):
        raise TypeCheckError(
            f"the distributed GROUP BY plan expects ⟨key, value⟩ INT64 tuples "
            f"(the paper's 16-byte workload); got {input_type!r}"
        )
    value = values[0]
    fn = reduce_fn or field_sum(value)

    n_net = network_fanout or _next_power_of_two(cluster.n_ranks)
    if n_net & (n_net - 1):
        raise TypeCheckError(f"network fan-out must be a power of two, got {n_net}")
    fanout_bits = n_net.bit_length() - 1
    comp = RadixCompression(key_bits, fanout_bits) if compression else None

    slot = ParameterSlot(TupleType.of(table=row_vector_type(input_type)))

    def build_worker(worker_slot: ParameterSlot) -> Operator:
        # The single-field projection is an identity (MOD022), but removing
        # it would shift the cost model's per-phase charging that the
        # benchmarks assert on; keep it and record the deviation.
        scan: Operator = RowScan(
            Projection(ParameterLookup(worker_slot), ["table"]).suppress(
                "MOD022"
            ),
            field="table",
            shard_by_rank=True,
        )
        if offload == "host":
            scan = ReduceByKey(scan, key, fn)
        elif offload == "nic":
            scan = NicPartialAggregate(scan, key, fn)
        net_fn = RadixPartition(key, n_net)
        local_hist = LocalHistogram(scan, net_fn)
        global_hist = MpiHistogram(local_hist, n_net)
        exchange = MpiExchange(
            scan, local_hist, global_hist, net_fn,
            compression=comp, id_field="net", data_field="data",
        )
        aggregated = NestedMap(
            exchange,
            lambda s: _build_network_partition_plan(
                s, key, value, input_type, local_fanout, key_bits, fanout_bits,
                comp, fn,
            ),
        )
        flat = RowScan(aggregated, field="agg")
        merged = ReduceByKey(flat, key, fn)
        return MaterializeRowVector(merged, field="result")

    executor = MpiExecutor(ParameterLookup(slot), build_worker, cluster)
    flat = RowScan(executor, field="result")
    # Final post-aggregation of all results received on the driver (§4.3).
    final = ReduceByKey(flat, key, fn)
    root = MaterializeRowVector(final, field="result")
    return DistributedGroupByPlan(
        root=root,
        slot=slot,
        executor=executor,
        output_type=root.output_type,
        cluster=cluster,
    )


def _build_network_partition_plan(
    slot: ParameterSlot,
    key: str,
    value: str,
    kv_type: TupleType,
    local_fanout: int,
    key_bits: int,
    fanout_bits: int,
    comp: RadixCompression | None,
    fn: ReduceFunction,
) -> Operator:
    """First-level nested plan: locally partition and aggregate one network
    partition, then post-aggregate across its local partitions."""
    pid = Projection(ParameterLookup(slot), ["net"])
    stream = RowScan(Projection(ParameterLookup(slot), ["data"]))
    if comp is not None:
        local_fn = RadixPartition("packed", local_fanout, shift=key_bits)
    else:
        local_fn = RadixPartition(key, local_fanout, shift=fanout_bits)
    hist = LocalHistogram(stream, local_fn)
    # Second-pass histograms count toward the local-partitioning phase.
    hist.phase_name = "local_partition"
    partitioned = LocalPartitioning(
        stream, hist, local_fn, id_field="sub", data_field="sdata"
    )
    pairs = CartesianProduct(pid, partitioned)  # ⟨net, sub, sdata⟩ triples
    aggregated = NestedMap(
        pairs,
        lambda s: _build_local_partition_plan(s, key, value, kv_type, key_bits, comp, fn),
    )
    flat = RowScan(aggregated, field="agg")
    merged = ReduceByKey(flat, key, fn)
    return MaterializeRowVector(merged, field="agg")


def _build_local_partition_plan(
    slot: ParameterSlot,
    key: str,
    value: str,
    kv_type: TupleType,
    key_bits: int,
    comp: RadixCompression | None,
    fn: ReduceFunction,
) -> Operator:
    """Second-level nested plan: decompress and aggregate one local partition."""
    stream = RowScan(Projection(ParameterLookup(slot), ["sdata"]))
    if comp is not None:
        pid = Projection(ParameterLookup(slot), ["net"])
        stream = ParametrizedMap(stream, pid, _decompress_fn(comp, key, value))
    aggregated = ReduceByKey(stream, key, fn)
    return MaterializeRowVector(aggregated, field="agg")


def _decompress_fn(
    comp: RadixCompression, key: str, value: str
) -> ParamTupleFunction:
    """Restore ⟨key, value⟩ from a packed word and the network partition id."""
    key_bits = comp.key_bits
    fanout_bits = comp.fanout_bits
    mask = comp.payload_mask
    output_type = TupleType.of(**{key: INT64, value: INT64})

    def scalar(param: tuple, row: tuple) -> tuple:
        packed = row[0]
        return (((packed >> key_bits) << fanout_bits) | param[0], packed & mask)

    def vectorized(param: tuple, columns: tuple[np.ndarray, ...]) -> tuple:
        packed = columns[0]
        return (((packed >> key_bits) << fanout_bits) | param[0], packed & mask)

    return ParamTupleFunction(scalar, output_type, vectorized)


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
