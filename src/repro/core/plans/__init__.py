"""Pre-assembled sub-operator plans for the paper's use cases (Section 4)."""

from repro.core.plans.broadcast_join import BroadcastJoinPlan, build_broadcast_join
from repro.core.plans.groupby import DistributedGroupByPlan, build_distributed_groupby
from repro.core.plans.join import DistributedJoinPlan, build_distributed_join
from repro.core.plans.join_sequence import JoinSequencePlan, build_join_sequence

__all__ = [
    "BroadcastJoinPlan",
    "build_broadcast_join",
    "DistributedGroupByPlan",
    "build_distributed_groupby",
    "DistributedJoinPlan",
    "build_distributed_join",
    "JoinSequencePlan",
    "build_join_sequence",
]
