"""Sequences of joins on the same attribute (paper Fig. 4, §4.2).

Two variants of an N-join cascade over relations ``R0 ⋈ R1 ⋈ … ⋈ RN``:

* **naive** — each join is a full distributed join; its materialized output
  is re-shuffled through the network together with the next relation, so a
  cascade of N joins shuffles ``2·N`` relations and materializes every
  intermediate result.
* **optimized** — because all joins share the join attribute, all ``N+1``
  relations are network-partitioned once up front; the per-partition nested
  plan then chains ``BuildProbe`` operators so intermediate join outputs
  stream from one probe into the next without materialization or further
  shuffling.

The paper's point is that this restructuring is a trivial re-composition of
the same sub-operators, whereas monolithic join operators would need deep
surgery.  Both variants below are assembled from the identical building
blocks used in :mod:`repro.core.plans.join`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.executor import ExecutionReport, execute
from repro.core.functions import RadixPartition
from repro.core.operator import Operator
from repro.core.options import UNSET, RunOptions, coerce_options
from repro.core.operators import (
    BuildProbe,
    LocalHistogram,
    LocalPartitioning,
    MaterializeRowVector,
    MpiExchange,
    MpiExecutor,
    MpiHistogram,
    NestedMap,
    ParameterLookup,
    ParameterSlot,
    Projection,
    RowScan,
    Zip,
)
from repro.errors import TypeCheckError
from repro.mpi.cluster import SimCluster
from repro.types.atoms import INT64
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["JoinSequencePlan", "build_join_sequence"]

VARIANTS = ("naive", "optimized")


@dataclass
class JoinSequencePlan:
    """A ready-to-run N-join cascade plus its binding points."""

    root: Operator
    slot: ParameterSlot
    executor: MpiExecutor
    output_type: TupleType
    cluster: SimCluster
    variant: str
    n_joins: int

    def run(
        self,
        relations: Sequence[RowVector],
        options: RunOptions | None = None,
        *,
        mode=UNSET,
        profile=UNSET,
        metrics=UNSET,
        faults=UNSET,
        sanitize=UNSET,
    ) -> ExecutionReport:
        if len(relations) != self.n_joins + 1:
            raise TypeCheckError(
                f"{self.n_joins}-join cascade needs {self.n_joins + 1} relations, "
                f"got {len(relations)}"
            )
        options = coerce_options(
            options, "JoinSequencePlan.run()", mode=mode, profile=profile,
            metrics=metrics, faults=faults, sanitize=sanitize,
        )
        return execute(
            self.root, params={self.slot: tuple(relations)}, options=options
        )

    @staticmethod
    def matches(result: ExecutionReport) -> RowVector:
        (row,) = result.rows
        return row[0]


def build_join_sequence(
    cluster: SimCluster,
    relation_types: Sequence[TupleType],
    key: str = "key",
    variant: str = "optimized",
    network_fanout: int | None = None,
    local_fanout: int = 16,
) -> JoinSequencePlan:
    """Assemble a cascade of ``len(relation_types) - 1`` joins.

    Args:
        cluster: Simulated cluster for the data-parallel part.
        relation_types: One ⟨key, payload⟩ tuple type per relation; all
            share the key field, payload names are pairwise distinct.
        key: The common join attribute.
        variant: ``"naive"`` or ``"optimized"`` (Fig. 4 left/right).
        network_fanout / local_fanout: Radix fan-outs (powers of two).

    Compression is not applied: the naive variant shuffles multi-field
    intermediate results that do not fit the ⟨key, payload⟩ packing, and
    using the identical wire format in both variants keeps the comparison
    about shuffles and materializations, as in the paper.
    """
    if len(relation_types) < 3:
        raise TypeCheckError(
            "a join sequence needs at least three relations (two joins)"
        )
    if variant not in VARIANTS:
        raise TypeCheckError(f"unknown variant {variant!r}; pick one of {VARIANTS}")
    payloads: set[str] = set()
    for i, rel in enumerate(relation_types):
        if key not in rel:
            raise TypeCheckError(f"relation {i} ({rel!r}) lacks key field {key!r}")
        for f in rel.field_names:
            if f != key:
                if f in payloads:
                    raise TypeCheckError(f"payload field {f!r} appears in two relations")
                payloads.add(f)
        if any(rel[f] != INT64 for f in rel.field_names):
            raise TypeCheckError(f"relation {i} must be all-INT64, got {rel!r}")

    n_net = network_fanout or _next_power_of_two(cluster.n_ranks)
    if n_net & (n_net - 1):
        raise TypeCheckError(f"network fan-out must be a power of two, got {n_net}")
    fanout_bits = n_net.bit_length() - 1

    slot = ParameterSlot(
        TupleType.of(
            **{f"r{i}": row_vector_type(rel) for i, rel in enumerate(relation_types)}
        )
    )

    def build_worker(worker_slot: ParameterSlot) -> Operator:
        scans = [
            RowScan(
                Projection(ParameterLookup(worker_slot), [f"r{i}"]),
                field=f"r{i}",
                shard_by_rank=True,
            )
            for i in range(len(relation_types))
        ]
        if variant == "optimized":
            stream = _optimized_cascade(scans, key, n_net, local_fanout, fanout_bits)
        else:
            stream = _naive_cascade(scans, key, n_net, local_fanout, fanout_bits)
        return MaterializeRowVector(stream, field="result")

    executor = MpiExecutor(ParameterLookup(slot), build_worker, cluster)
    flat = RowScan(executor, field="result")
    root = MaterializeRowVector(flat, field="result")
    return JoinSequencePlan(
        root=root,
        slot=slot,
        executor=executor,
        output_type=root.output_type,
        cluster=cluster,
        variant=variant,
        n_joins=len(relation_types) - 1,
    )


def _exchange(
    stream: Operator, key: str, n_net: int, pid_field: str, data_field: str
) -> MpiExchange:
    """The standard LocalHistogram → MpiHistogram → MpiExchange ladder."""
    net_fn = RadixPartition(key, n_net)
    local_hist = LocalHistogram(stream, net_fn)
    global_hist = MpiHistogram(local_hist, n_net)
    # Deliberately uncompressed (MOD023): both Figure 4 variants must use
    # the same wire format — see the build_join_sequence docstring.
    return MpiExchange(
        stream, local_hist, global_hist, net_fn,
        id_field=pid_field, data_field=data_field,
    ).suppress("MOD023")


def _optimized_cascade(
    scans: list[Operator], key: str, n_net: int, local_fanout: int, fanout_bits: int
) -> Operator:
    """Pre-partition all relations, then chain BuildProbes per partition."""
    k = len(scans)
    exchanges = [
        _exchange(scan, key, n_net, f"net{i}", f"data{i}")
        for i, scan in enumerate(scans)
    ]
    zipped = Zip(exchanges)

    def level1(slot: ParameterSlot) -> Operator:
        partitioned = []
        for i in range(k):
            stream = RowScan(Projection(ParameterLookup(slot), [f"data{i}"]))
            local_fn = RadixPartition(key, local_fanout, shift=fanout_bits)
            hist = LocalHistogram(stream, local_fn)
            hist.phase_name = "local_partition"
            partitioned.append(
                LocalPartitioning(
                    stream, hist, local_fn, id_field=f"sub{i}", data_field=f"sd{i}"
                )
            )
        pairs = Zip(partitioned)

        def level2(slot2: ParameterSlot) -> Operator:
            acc = RowScan(Projection(ParameterLookup(slot2), ["sd0"]))
            for i in range(1, k):
                side = RowScan(Projection(ParameterLookup(slot2), [f"sd{i}"]))
                # Build on the incoming relation, probe with the streaming
                # cascade output: intermediate results never materialize.
                acc = BuildProbe(side, acc, keys=key)
            return MaterializeRowVector(acc, field="matches")

        joined = NestedMap(pairs, level2)
        flat = RowScan(joined, field="matches")
        return MaterializeRowVector(flat, field="matches")

    joined = NestedMap(zipped, level1)
    return RowScan(joined, field="matches")


def _naive_cascade(
    scans: list[Operator], key: str, n_net: int, local_fanout: int, fanout_bits: int
) -> Operator:
    """Full distributed join per stage; re-shuffle each intermediate result."""
    acc = _network_join(scans[0], scans[1], key, n_net, local_fanout, fanout_bits)
    for scan in scans[2:]:
        # ``acc`` is consumed by both the histogram and the exchange of the
        # next stage, so the plan compiler inserts a materialization point —
        # exactly the extra intermediate-result materialization the naive
        # variant pays for (§5.2.1).
        acc = _network_join(scan, acc, key, n_net, local_fanout, fanout_bits)
    return acc


def _network_join(
    left: Operator, right: Operator, key: str, n_net: int, local_fanout: int,
    fanout_bits: int,
) -> Operator:
    """One full distributed join stage returning a flat match stream."""
    ex_left = _exchange(left, key, n_net, "net_l", "data_l")
    ex_right = _exchange(right, key, n_net, "net_r", "data_r")
    zipped = Zip([ex_left, ex_right])

    def level1(slot: ParameterSlot) -> Operator:
        partitioned = []
        for data_field, sub_id, sub_data in (
            ("data_l", "sub_l", "sd_l"),
            ("data_r", "sub_r", "sd_r"),
        ):
            stream = RowScan(Projection(ParameterLookup(slot), [data_field]))
            local_fn = RadixPartition(key, local_fanout, shift=fanout_bits)
            hist = LocalHistogram(stream, local_fn)
            hist.phase_name = "local_partition"
            partitioned.append(
                LocalPartitioning(
                    stream, hist, local_fn, id_field=sub_id, data_field=sub_data
                )
            )
        pairs = Zip(partitioned)

        def level2(slot2: ParameterSlot) -> Operator:
            build = RowScan(Projection(ParameterLookup(slot2), ["sd_l"]))
            probe = RowScan(Projection(ParameterLookup(slot2), ["sd_r"]))
            return MaterializeRowVector(
                BuildProbe(build, probe, keys=key), field="matches"
            )

        joined = NestedMap(pairs, level2)
        flat = RowScan(joined, field="matches")
        return MaterializeRowVector(flat, field="matches")

    joined = NestedMap(zipped, level1)
    return RowScan(joined, field="matches")


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
