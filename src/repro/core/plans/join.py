"""The distributed radix hash join as a sub-operator plan (paper Fig. 3).

Builds the exact plan of Section 4.1.2: per rank, each side runs
``LocalHistogram → MpiHistogram → MpiExchange`` (with optional radix
compression), the two sides are zipped into ⟨partitionID, data⟩ pair tuples
and handed to a first-level ``NestedMap`` that radix-partitions each
network partition further into cache-sized sub-partitions; a second-level
``NestedMap`` joins each sub-partition pair with ``BuildProbe`` and
recovers the compressed key bits with a ``ParametrizedMap`` parametrized by
the network partition ID.

None of the sub-operators used here is specific to this join — the paper's
headline modularity claim — and swapping ``join_type`` (inner/semi/anti/
left_outer) changes only the BuildProbe probe policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compression import RadixCompression
from repro.core.executor import ExecutionReport, execute
from repro.core.functions import ParamTupleFunction, RadixPartition, TupleFunction
from repro.core.options import UNSET, RunOptions, coerce_options
from repro.core.operator import Operator
from repro.core.operators import (
    BuildProbe,
    LocalSort,
    MergeJoin,
    CartesianProduct,
    LocalHistogram,
    LocalPartitioning,
    Map,
    MaterializeRowVector,
    MpiExchange,
    MpiExecutor,
    MpiHistogram,
    NestedMap,
    ParameterLookup,
    ParameterSlot,
    ParametrizedMap,
    Projection,
    RowScan,
    Zip,
)
from repro.errors import TypeCheckError
from repro.mpi.cluster import SimCluster
from repro.types.atoms import INT64
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["DistributedJoinPlan", "build_distributed_join"]


def _two_column_check(side: str, tuple_type: TupleType, key: str) -> str:
    """Validate a ⟨key, payload⟩ relation; return the payload field name."""
    if key not in tuple_type:
        raise TypeCheckError(f"{side} relation {tuple_type!r} lacks key field {key!r}")
    payloads = [f.name for f in tuple_type if f.name != key]
    if len(payloads) != 1 or any(tuple_type[f] != INT64 for f in tuple_type.field_names):
        raise TypeCheckError(
            f"the distributed join plan expects ⟨key, payload⟩ INT64 relations "
            f"(the paper's 16-byte workload); got {side} = {tuple_type!r}"
        )
    return payloads[0]


@dataclass
class DistributedJoinPlan:
    """A ready-to-run distributed join plan plus its binding points."""

    root: Operator
    slot: ParameterSlot
    executor: MpiExecutor
    output_type: TupleType
    cluster: SimCluster

    def run(
        self,
        left: RowVector,
        right: RowVector,
        options: RunOptions | None = None,
        *,
        mode=UNSET,
        profile=UNSET,
        metrics=UNSET,
        faults=UNSET,
        sanitize=UNSET,
    ) -> ExecutionReport:
        """Execute the join on two driver-resident relations."""
        options = coerce_options(
            options, "DistributedJoinPlan.run()", mode=mode, profile=profile,
            metrics=metrics, faults=faults, sanitize=sanitize,
        )
        return execute(self.root, params={self.slot: (left, right)}, options=options)

    @staticmethod
    def matches(result: ExecutionReport) -> RowVector:
        """Extract the materialized join output from an execution result."""
        (row,) = result.rows
        return row[0]


def build_distributed_join(
    cluster: SimCluster,
    left_type: TupleType,
    right_type: TupleType,
    key: str = "key",
    network_fanout: int | None = None,
    local_fanout: int = 16,
    key_bits: int = 27,
    compression: bool = True,
    join_type: str = "inner",
    algorithm: str = "hash",
) -> DistributedJoinPlan:
    """Assemble the Figure 3 plan for two ⟨key, payload⟩ relations.

    Args:
        cluster: Simulated cluster to run the data-parallel part on.
        left_type / right_type: Tuple types of the build and probe
            relations; one INT64 key field (same name on both sides) and
            one INT64 payload field (distinct names).
        key: Name of the join attribute.
        network_fanout: First-level radix fan-out (power of two); defaults
            to the cluster size, i.e. one network partition per rank.
        local_fanout: Second-level fan-out producing cache-sized
            sub-partitions (power of two).
        key_bits: ``P``: keys and payloads come from a dense ``2**P``
            domain; used by the compression scheme.
        compression: Pack ⟨key, payload⟩ into 8-byte words on the wire,
            halving network volume (paper Section 4.1.1).
        join_type: BuildProbe variant (inner/semi/anti/left_outer).
        algorithm: ``hash`` joins each sub-partition pair with BuildProbe
            (the paper's plan); ``sortmerge`` swaps that one plan fragment
            for LocalSort + MergeJoin — the sort-vs-hash ablation.
    """
    if algorithm not in ("hash", "sortmerge"):
        raise TypeCheckError(f"unknown join algorithm {algorithm!r}")
    n_net = network_fanout or _next_power_of_two(cluster.n_ranks)
    if n_net & (n_net - 1):
        raise TypeCheckError(f"network fan-out must be a power of two, got {n_net}")
    fanout_bits = n_net.bit_length() - 1
    left_payload = _two_column_check("left", left_type, key)
    right_payload = _two_column_check("right", right_type, key)
    if left_payload == right_payload:
        raise TypeCheckError(
            f"left and right payload fields must have distinct names, both are "
            f"{left_payload!r}"
        )
    comp = RadixCompression(key_bits, fanout_bits) if compression else None

    slot = ParameterSlot(
        TupleType.of(
            left=row_vector_type(left_type), right=row_vector_type(right_type)
        )
    )

    def build_worker(worker_slot: ParameterSlot) -> Operator:
        exchanged = []
        for side, pid_field, data_field in (
            ("left", "net_l", "data_l"),
            ("right", "net_r", "data_r"),
        ):
            scan = RowScan(
                Projection(ParameterLookup(worker_slot), [side]),
                field=side,
                shard_by_rank=True,
            )
            net_fn = RadixPartition(key, n_net)
            local_hist = LocalHistogram(scan, net_fn)
            global_hist = MpiHistogram(local_hist, n_net)
            exchanged.append(
                MpiExchange(
                    scan,
                    local_hist,
                    global_hist,
                    net_fn,
                    compression=comp,
                    id_field=pid_field,
                    data_field=data_field,
                )
            )
        zipped = Zip(exchanged)
        joined = NestedMap(
            zipped,
            lambda s: _build_network_partition_plan(
                s, key, left_payload, right_payload, local_fanout, key_bits,
                fanout_bits, comp, join_type, algorithm,
            ),
        )
        flat = RowScan(joined, field="matches")
        return MaterializeRowVector(flat, field="result")

    executor = MpiExecutor(ParameterLookup(slot), build_worker, cluster)
    flat = RowScan(executor, field="result")
    root = MaterializeRowVector(flat, field="result")
    return DistributedJoinPlan(
        root=root,
        slot=slot,
        executor=executor,
        output_type=root.output_type,
        cluster=cluster,
    )


def _build_network_partition_plan(
    slot: ParameterSlot,
    key: str,
    left_payload: str,
    right_payload: str,
    local_fanout: int,
    key_bits: int,
    fanout_bits: int,
    comp: RadixCompression | None,
    join_type: str,
    algorithm: str,
) -> Operator:
    """First-level nested plan: sub-partition one network partition pair."""
    lookup = ParameterLookup(slot)
    pid = Projection(lookup, ["net_l"])
    def local_side(data_field: str, sub_id: str, sub_data: str) -> LocalPartitioning:
        stream = RowScan(Projection(ParameterLookup(slot), [data_field]))
        if comp is not None:
            # The wire carries packed words whose low ``key_bits`` are the
            # payload; the compressed key (network bits already dropped)
            # starts right above them.
            local_fn = RadixPartition("packed", local_fanout, shift=key_bits)
        else:
            # Sub-partition on the key bits right above the network bits.
            local_fn = RadixPartition(key, local_fanout, shift=fanout_bits)
        hist = LocalHistogram(stream, local_fn)
        # The second-pass histogram is part of the local-partitioning phase
        # in the paper's accounting (it feeds the in-memory scatter).
        hist.phase_name = "local_partition"
        return LocalPartitioning(
            stream, hist, local_fn, id_field=sub_id, data_field=sub_data
        )

    left = local_side("data_l", "sub_l", "sdata_l")
    right = local_side("data_r", "sub_r", "sdata_r")
    pairs = CartesianProduct(pid, Zip([left, right]))
    joined = NestedMap(
        pairs,
        lambda s: _build_sub_partition_plan(
            s, key, left_payload, right_payload, key_bits, comp, join_type,
            algorithm,
        ),
    )
    flat = RowScan(joined, field="matches")
    return MaterializeRowVector(flat, field="matches")


def _build_sub_partition_plan(
    slot: ParameterSlot,
    key: str,
    left_payload: str,
    right_payload: str,
    key_bits: int,
    comp: RadixCompression | None,
    join_type: str,
    algorithm: str = "hash",
) -> Operator:
    """Second-level nested plan: join one sub-partition pair in memory."""
    pid = Projection(ParameterLookup(slot), ["net_l"])
    left_stream = RowScan(Projection(ParameterLookup(slot), ["sdata_l"]))
    right_stream = RowScan(Projection(ParameterLookup(slot), ["sdata_r"]))

    def join_pair(left_side: Operator, right_side: Operator, join_key: str) -> Operator:
        if algorithm == "sortmerge":
            return MergeJoin(
                LocalSort(left_side, join_key),
                LocalSort(right_side, join_key),
                key=join_key,
                join_type=join_type,
            )
        return BuildProbe(left_side, right_side, keys=join_key, join_type=join_type)

    if comp is None:
        return MaterializeRowVector(
            join_pair(left_stream, right_stream, key), field="matches"
        )

    left_kv = Map(left_stream, _unpack_fn(comp, "ckey", left_payload))
    right_kv = Map(right_stream, _unpack_fn(comp, "ckey", right_payload))
    probe = join_pair(left_kv, right_kv, "ckey")
    recover = ParametrizedMap(probe, pid, _recover_fn(comp, key, probe.output_type))
    return MaterializeRowVector(recover, field="matches")


def _unpack_fn(comp: RadixCompression, key_field: str, payload: str) -> TupleFunction:
    """Split a packed word into ⟨compressed key, payload⟩ columns."""
    key_bits = comp.key_bits
    mask = comp.payload_mask

    def scalar(row: tuple) -> tuple:
        packed = row[0]
        return (packed >> key_bits, packed & mask)

    def vectorized(columns: tuple[np.ndarray, ...]) -> tuple[np.ndarray, ...]:
        packed = columns[0]
        return (packed >> key_bits, packed & mask)

    return TupleFunction(
        scalar, TupleType.of(**{key_field: INT64, payload: INT64}), vectorized
    )


def _recover_fn(
    comp: RadixCompression, key: str, probe_type: TupleType
) -> ParamTupleFunction:
    """Restore the network bits dropped by compression: key = ckey<<F | pid."""
    fanout_bits = comp.fanout_bits
    output_type = probe_type.rename({"ckey": key})

    def scalar(param: tuple, row: tuple) -> tuple:
        return ((row[0] << fanout_bits) | param[0],) + row[1:]

    def vectorized(param: tuple, columns: tuple[np.ndarray, ...]) -> tuple:
        restored = (columns[0] << fanout_bits) | param[0]
        return (restored,) + tuple(columns[1:])

    return ParamTupleFunction(scalar, output_type, vectorized)


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
