"""Broadcast join: replicate the small side instead of shuffling both.

The sub-operator library makes alternative distributed join strategies a
matter of re-composition (the paper's central claim): replacing the two
``MpiExchange`` ladders of Figure 3 with a single ``MpiBroadcast`` of the
small relation yields the classic broadcast (fragment-replicate) join —
every rank builds a hash table over the full small side and probes it with
its local shard of the big side.  No histograms of the big side, no
network partitioning of it, no nested partition plans.

Cost trade-off: the exchange join moves ``(|L| + |R|) / n`` tuples per
rank; the broadcast join moves ``|L|`` tuples to every rank but leaves
``R`` untouched.  Broadcasting wins when the build side is small — the
crossover is measured in ``benchmarks/test_broadcast_crossover.py`` and
exploited by the optimizer's strategy rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import ExecutionReport, execute
from repro.core.functions import RadixPartition
from repro.core.operator import Operator
from repro.core.options import UNSET, RunOptions, coerce_options
from repro.core.operators import (
    BuildProbe,
    LocalHistogram,
    MaterializeRowVector,
    MpiBroadcast,
    MpiExecutor,
    MpiHistogram,
    ParameterLookup,
    ParameterSlot,
    Projection,
    RowScan,
)
from repro.errors import TypeCheckError
from repro.mpi.cluster import SimCluster
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["BroadcastJoinPlan", "build_broadcast_join"]


@dataclass
class BroadcastJoinPlan:
    """A ready-to-run broadcast join plus its binding points."""

    root: Operator
    slot: ParameterSlot
    executor: MpiExecutor
    output_type: TupleType
    cluster: SimCluster

    def run(
        self,
        small: RowVector,
        big: RowVector,
        options: RunOptions | None = None,
        *,
        mode=UNSET,
        profile=UNSET,
        metrics=UNSET,
        faults=UNSET,
        sanitize=UNSET,
    ) -> ExecutionReport:
        """Join ``small ⋈ big``; the small relation is replicated."""
        options = coerce_options(
            options, "BroadcastJoinPlan.run()", mode=mode, profile=profile,
            metrics=metrics, faults=faults, sanitize=sanitize,
        )
        return execute(self.root, params={self.slot: (small, big)}, options=options)

    @staticmethod
    def matches(result: ExecutionReport) -> RowVector:
        (row,) = result.rows
        return row[0]


def build_broadcast_join(
    cluster: SimCluster,
    small_type: TupleType,
    big_type: TupleType,
    key: str = "key",
    join_type: str = "inner",
) -> BroadcastJoinPlan:
    """Assemble a broadcast join of two relations on ``key``.

    Both relations may have arbitrary fields (non-key names must be
    distinct across sides); the *small* side is the hash-build side.
    """
    if key not in small_type or key not in big_type:
        raise TypeCheckError(
            f"both relations need the join key {key!r}; got {small_type!r} "
            f"and {big_type!r}"
        )
    clash = (set(small_type.field_names) & set(big_type.field_names)) - {key}
    if clash:
        raise TypeCheckError(
            f"non-key fields must have distinct names; both sides define "
            f"{sorted(clash)}"
        )

    slot = ParameterSlot(
        TupleType.of(small=row_vector_type(small_type), big=row_vector_type(big_type))
    )

    def build_worker(worker_slot: ParameterSlot) -> Operator:
        small_scan = RowScan(
            Projection(ParameterLookup(worker_slot), ["small"]),
            field="small",
            shard_by_rank=True,
        )
        # The broadcast consumes a single-bucket histogram pair: how many
        # tuples each rank contributes, and the global total.
        local_count = LocalHistogram(small_scan, RadixPartition(key, 1))
        global_count = MpiHistogram(local_count, 1)
        replicated = MpiBroadcast(small_scan, local_count, global_count)

        big_scan = RowScan(
            Projection(ParameterLookup(worker_slot), ["big"]),
            field="big",
            shard_by_rank=True,
        )
        probe = BuildProbe(replicated, big_scan, keys=key, join_type=join_type)
        return MaterializeRowVector(probe, field="result")

    executor = MpiExecutor(ParameterLookup(slot), build_worker, cluster)
    flat = RowScan(executor, field="result")
    root = MaterializeRowVector(flat, field="result")
    return BroadcastJoinPlan(
        root=root,
        slot=slot,
        executor=executor,
        output_type=root.output_type,
        cluster=cluster,
    )
