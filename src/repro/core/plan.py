"""Plan analysis: DAG → pipelines with materialization points (§3.2, §3.4).

The paper extends the Volcano model to DAGs by cutting them into
tree-shaped *pipelines*: a pipeline starts at plan inputs or at the result
of any operator with several consumers, and ends at a materialization
point, so each intermediate result is computed once and read by all its
consumers.  Each pipeline is then lowered and JiT-compiled as one unit.

:func:`prepare` performs the equivalent analysis on an operator DAG:

* operators with multiple consumers get wrapped in :class:`SharedScan`
  nodes, which materialize the shared result once per plan invocation and
  replay it to every consumer (the DAG→pipelines cut);
* operators are grouped into pipelines (streaming edges fuse, blocking
  edges cut) and annotated with their pipeline's size, which drives the
  cost model's abstraction-overhead rule;
* every operator is assigned the algorithm *phase* it works for — its own
  ``phase_name`` if it defines one, otherwise the phase of the consumer it
  feeds — producing the per-phase breakdowns of Figure 6a.

``prepare`` recurses into nested plans (``NestedMap``/``MpiExecutor``),
each of which forms its own scope.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.build_probe import BuildProbe
from repro.core.operators.cartesian_product import CartesianProduct
from repro.core.operators.chunk_ops import MaterializeChunks
from repro.core.operators.local_histogram import LocalHistogram
from repro.core.operators.local_partitioning import LocalPartitioning
from repro.core.operators.map_ops import ParametrizedMap
from repro.core.operators.materialize import MaterializeRowVector
from repro.core.operators.mpi_broadcast import MpiBroadcast
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.operators.mpi_histogram import MpiHistogram
from repro.core.operators.nested_map import NestedMap
from repro.core.operators.nic_aggregate import NicPartialAggregate
from repro.core.operators.parameter_lookup import ParameterLookup
from repro.core.operators.reduce_ops import Reduce, ReduceByKey
from repro.core.operators.sort_ops import LocalSort, MergeJoin
from repro.types.collections import RowVector

__all__ = ["SharedScan", "prepare", "walk", "explain"]

#: Operators whose *output* is a materialization point: downstream work
#: starts a new pipeline.
_OUTPUT_BREAKERS = (
    MaterializeRowVector,
    MaterializeChunks,
    LocalPartitioning,
    LocalSort,
    MpiExchange,
    MpiBroadcast,
    NestedMap,
    MpiExecutor,
    ParameterLookup,
    LocalHistogram,
    MpiHistogram,
    Reduce,
    ReduceByKey,
    NicPartialAggregate,
)

#: Input positions an operator fully materializes before its main loop
#: (hash-build sides, histograms, parameters); those edges cut pipelines.
_SIDE_INPUTS: dict[type, frozenset[int]] = {
    BuildProbe: frozenset({0}),
    MergeJoin: frozenset({0, 1}),
    LocalPartitioning: frozenset({1}),
    MpiExchange: frozenset({1, 2}),
    MpiBroadcast: frozenset({1, 2}),
    ParametrizedMap: frozenset({1}),
    CartesianProduct: frozenset({0}),
}

#: Pipelines containing these compound operators keep scatter/probe loops
#: that stay large after fusion, whatever the plan's operator count.
_HEAVY_OPS = (MpiExchange, LocalPartitioning, BuildProbe, MpiBroadcast, MergeJoin)

#: Effective size assigned to pipelines containing a heavy operator.
_HEAVY_PIPELINE_SIZE = 6


class SharedScan(Operator):
    """Materialize-once / read-many wrapper for multi-consumer operators.

    One SharedScan is inserted per consumer edge of a shared operator; all
    wrappers of the same operator serve from a single per-context cache, so
    the shared sub-plan executes exactly once per plan invocation (per
    nested-plan parameter binding), mirroring the paper's pipeline cut with
    a materialization point.
    """

    abbreviation = "MS"

    def __init__(self, wrapped: Operator) -> None:
        super().__init__(upstreams=(wrapped,))
        self._output_type = wrapped.output_type

    def _materialized(self, ctx: ExecutionContext) -> RowVector:
        wrapped = self.upstreams[0]
        key = id(wrapped)
        binding = ctx.parameter_binding_key()
        cached = ctx.shared_cache.get(key)
        if cached is not None and cached[0] == binding:
            return cached[1]
        vector = wrapped.drain(ctx)
        ctx.charge_materialize(self, vector.size_bytes())
        ctx.shared_cache[key] = (binding, vector)
        return vector

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        yield from self._materialized(ctx).iter_rows()

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        yield self._materialized(ctx)


def walk(root: Operator, into_nested: bool = False) -> Iterator[Operator]:
    """Yield each reachable operator once (DFS over upstream edges).

    Args:
        root: Plan root.
        into_nested: Also descend into nested plans.
    """
    seen: set[int] = set()
    stack = [root]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        yield op
        stack.extend(op.upstreams)
        if into_nested:
            stack.extend(op.nested_roots())


def _is_base_scan_chain(op: Operator) -> bool:
    """True for scans of already-materialized inputs (base tables).

    Re-reading such a chain costs one streaming pass and no materialization,
    so a multi-consumer base scan is cheaper to *re-execute* per consumer
    than to materialize — exactly what the monolithic algorithms do ("each
    rank reads the input again" for the partitioning pass).
    """
    from repro.core.operators.projection import Projection
    from repro.core.operators.row_scan import RowScan

    if not isinstance(op, RowScan):
        return False
    current: Operator = op.upstreams[0]
    while isinstance(current, Projection):
        current = current.upstreams[0]
    return isinstance(current, ParameterLookup)


def _clone_scan_chain(op: Operator) -> Operator:
    """Fresh plan nodes for one consumer's private re-scan of a base table.

    Clones must carry the original nodes' lint suppressions: a suppression
    records an *intentional* deviation on the plan as the user built it,
    and analyses run after ``prepare()`` (e.g. the degraded-plan
    re-verification in stage recovery) must see the same verdicts as
    before compilation.
    """
    from repro.core.operators.projection import Projection
    from repro.core.operators.row_scan import RowScan

    if isinstance(op, RowScan):
        clone: Operator = RowScan(
            _clone_scan_chain(op.upstreams[0]), op.field, shard_by_rank=op.shard_by_rank
        )
    elif isinstance(op, Projection):
        clone = Projection(_clone_scan_chain(op.upstreams[0]), op.fields)
    elif isinstance(op, ParameterLookup):
        clone = ParameterLookup(op.slot)
    else:
        raise AssertionError(f"not a base-scan chain node: {op!r}")
    if op.lint_suppressions:
        clone.lint_suppressions = op.lint_suppressions
    return clone


def _insert_shared_scans(root: Operator) -> None:
    """Cut the DAG at multi-consumer operators.

    Base-table scan chains are *cloned* per consumer (each consumer
    re-reads the input, as the paper's algorithms do); every other shared
    operator is wrapped in a SharedScan, which materializes its result once
    and replays it — the pipeline materialization point of Section 3.2.
    """
    consumers: dict[int, list[tuple[Operator, int]]] = {}
    by_id: dict[int, Operator] = {}
    for op in walk(root):
        for pos, up in enumerate(op.upstreams):
            consumers.setdefault(id(up), []).append((op, pos))
            by_id[id(up)] = up
    for up_id, edges in consumers.items():
        upstream = by_id[up_id]
        if len(edges) < 2 or isinstance(upstream, (SharedScan, ParameterLookup)):
            continue
        rescan = _is_base_scan_chain(upstream)
        for index, (consumer, pos) in enumerate(edges):
            if rescan:
                if index == 0:
                    continue  # first consumer keeps the original chain
                replacement: Operator = _clone_scan_chain(upstream)
            else:
                replacement = SharedScan(upstream)
            new_upstreams = list(consumer.upstreams)
            new_upstreams[pos] = replacement
            consumer.upstreams = tuple(new_upstreams)


def _edge_is_fused(consumer: Operator, position: int, upstream: Operator) -> bool:
    if isinstance(upstream, _OUTPUT_BREAKERS) or isinstance(upstream, SharedScan):
        return False
    side = _SIDE_INPUTS.get(type(consumer))
    if side and position in side:
        return False
    return True


def _assign_pipelines_and_phases(root: Operator) -> list[list[Operator]]:
    """Group one scope into pipelines and propagate phase labels."""
    pipelines: list[list[Operator]] = []
    visited: set[int] = set()

    def visit(op: Operator, pipeline: list[Operator], consumer_phase: str) -> None:
        if id(op) in visited:
            return
        visited.add(id(op))
        pipeline.append(op)
        op.assigned_phase = op.phase_name or consumer_phase
        for pos, up in enumerate(op.upstreams):
            if _edge_is_fused(op, pos, up):
                visit(up, pipeline, op.assigned_phase)
            else:
                fresh: list[Operator] = []
                visit(up, fresh, op.assigned_phase)
                if fresh:
                    pipelines.append(fresh)

    top: list[Operator] = []
    visit(root, top, root.phase_name or "other")
    pipelines.append(top)

    for pipeline in pipelines:
        size = len(pipeline)
        if any(isinstance(op, _HEAVY_OPS) for op in pipeline):
            size = max(size, _HEAVY_PIPELINE_SIZE)
        for op in pipeline:
            op.pipeline_size = size
    return pipelines


def prepare(root: Operator) -> Operator:
    """Compile a plan: cut the DAG into pipelines and annotate operators.

    Idempotent; returns ``root`` for chaining.  Must run before execution —
    :func:`repro.core.executor.execute` calls it automatically.
    """
    if getattr(root, "_prepared", False):
        return root
    scopes = [root]
    while scopes:
        scope_root = scopes.pop()
        _insert_shared_scans(scope_root)
        _assign_pipelines_and_phases(scope_root)
        for op in walk(scope_root):
            scopes.extend(op.nested_roots())
    root._prepared = True
    return root


def explain(root: Operator, indent: str = "") -> str:
    """Render a plan tree as text (nested plans included)."""
    lines: list[str] = []

    def emit(op: Operator, depth: int) -> None:
        pad = indent + "  " * depth
        lines.append(
            f"{pad}{op.abbreviation} {type(op).__name__}"
            f" -> {op.output_type!r} [phase={op.assigned_phase}]"
        )
        for up in op.upstreams:
            emit(up, depth + 1)
        for nested in op.nested_roots():
            lines.append(f"{pad}  (nested plan)")
            emit(nested, depth + 2)

    emit(root, 0)
    return "\n".join(lines)
