"""MpiHistogram: combine local histograms into the global one (§3.3.3).

Implemented with ``MPI_Allreduce``, exactly as in the paper.  Because the
collective waits for every rank, a rank that was slow in the preceding
local-histogram phase stalls all others here — the tail-latency effect the
paper identifies as the main cost of running the two join sides through
separate collective epochs (§5.1.2, "global histogram phase").
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.local_histogram import HISTOGRAM_TYPE
from repro.errors import ExecutionError, TypeCheckError
from repro.types.collections import RowVector

__all__ = ["MpiHistogram"]


class MpiHistogram(Operator):
    """Consume ⟨bucketID, count⟩ pairs; return global counts per bucket."""

    abbreviation = "MH"
    phase_name = "global_histogram"

    def __init__(self, upstream: Operator, n_buckets: int) -> None:
        super().__init__(upstreams=(upstream,))
        if upstream.output_type != HISTOGRAM_TYPE:
            raise TypeCheckError(
                f"MpiHistogram needs {HISTOGRAM_TYPE!r} input, got {upstream.output_type!r}"
            )
        if n_buckets < 1:
            raise TypeCheckError(f"need >= 1 bucket, got {n_buckets}")
        self.n_buckets = n_buckets
        self._output_type = HISTOGRAM_TYPE

    def _global_counts(self, ctx: ExecutionContext) -> np.ndarray:
        local = np.zeros(self.n_buckets, dtype=np.int64)
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) == 0:
                continue
            buckets = batch.column("bucket")
            if not (0 <= int(buckets.min()) and int(buckets.max()) < self.n_buckets):
                raise ExecutionError(
                    f"histogram bucket outside [0, {self.n_buckets})"
                )
            np.add.at(local, buckets, batch.column("count"))
        ctx.set_phase(self.assigned_phase)
        return ctx.comm.allreduce(local, op="sum")

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        counts = self._global_counts(ctx)
        for bucket in range(self.n_buckets):
            yield (bucket, int(counts[bucket]))

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        counts = self._global_counts(ctx)
        yield RowVector(
            HISTOGRAM_TYPE, [np.arange(self.n_buckets, dtype=np.int64), counts]
        )
