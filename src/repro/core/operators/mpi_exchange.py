"""MpiExchange: partition tuples across the cluster through RMA (§3.3.3).

The synchronization-free network shuffle of the monolithic RDMA joins
[Barthels et al.], factored out as a reusable sub-operator:

1. consume the local histogram (tuples this rank contributes per partition)
   and the global histogram (total partition sizes) from two dedicated
   upstream operators;
2. allgather the local histograms so every rank can compute, locally, the
   exclusive offset of every ⟨source rank, partition⟩ region;
3. collectively create one RMA window per rank, sized to exactly the
   partitions that rank owns;
4. consume the data upstream, determine each tuple's partition with the
   shared partition function, optionally compress ⟨key, payload⟩ pairs into
   single words (halving network volume), and write buffer-sized batches
   into the remote windows with one-sided puts — no synchronization during
   the transfer, because the offsets are exclusive by construction;
5. fence, then return the partitions this rank owns as
   ⟨partitionID, partitionData⟩ pairs in dense, increasing order.

Partition ``p`` is owned by rank ``p mod n_ranks``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.compression import COMPRESSED_TYPE, RadixCompression
from repro.core.context import ExecutionContext
from repro.core.functions import PartitionFunction
from repro.core.operator import Operator
from repro.core.operators.local_histogram import HISTOGRAM_TYPE, read_histogram
from repro.errors import ExecutionError, TypeCheckError
from repro.types.atoms import INT64
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["MpiExchange"]

#: Rows per one-sided put; models the software write-combining buffers the
#: monolithic algorithm flushes asynchronously when full.
BUFFER_ROWS = 1 << 15

#: Fixed exponential buckets for the rows-per-partition-send histogram
#: (1 row .. 4^11 ≈ 4M rows), shared so rank registries merge by addition.
_SEND_ROWS_BOUNDS = tuple(float(4**i) for i in range(12))


class MpiExchange(Operator):
    """Shuffle tuples so every partition lands entirely on one rank.

    Args:
        data: Main upstream with the tuples to partition.
        local_histogram: Upstream yielding this rank's ⟨bucket, count⟩ pairs.
        global_histogram: Upstream yielding global ⟨bucket, count⟩ pairs
            (usually an ``MpiHistogram``).
        partition_fn: The same partition function the histograms used.
        compression: Optional radix compression; when set, the exchanged
            tuples travel as single packed words and ``partitionData`` keeps
            the compressed type — downstream recovers the dropped bits from
            ``partitionID`` (paper Section 4.1.1).
        id_field / data_field: Names of the two output fields.
    """

    abbreviation = "EX"
    phase_name = "network_partition"

    def __init__(
        self,
        data: Operator,
        local_histogram: Operator,
        global_histogram: Operator,
        partition_fn: PartitionFunction,
        compression: RadixCompression | None = None,
        id_field: str = "partition",
        data_field: str = "data",
    ) -> None:
        super().__init__(upstreams=(data, local_histogram, global_histogram))
        for side, name in ((local_histogram, "local"), (global_histogram, "global")):
            if side.output_type != HISTOGRAM_TYPE:
                raise TypeCheckError(
                    f"MpiExchange {name} histogram upstream must produce "
                    f"{HISTOGRAM_TYPE!r}, got {side.output_type!r}"
                )
        self.partition_fn = partition_fn
        if hasattr(partition_fn, "bind"):
            partition_fn.bind(data.output_type)
        self.compression = compression
        if compression is not None:
            element = data.output_type
            if len(element) != 2 or any(
                element[f] != INT64 for f in element.field_names
            ):
                raise TypeCheckError(
                    "radix compression needs ⟨key, payload⟩ INT64 tuples, "
                    f"got {element!r}"
                )
        self.id_field = id_field
        self.data_field = data_field
        self._wire_type = COMPRESSED_TYPE if compression else data.output_type
        self._output_type = TupleType.of(
            **{id_field: INT64, data_field: row_vector_type(self._wire_type)}
        )

    @property
    def n_partitions(self) -> int:
        return self.partition_fn.n_partitions

    def _owned_partitions(self, rank: int, n_ranks: int) -> range:
        return range(rank, self.n_partitions, n_ranks)

    def _layout_table(self, global_counts: np.ndarray, n_ranks: int) -> np.ndarray:
        """Base offset of every partition inside its owner's window.

        Computed once per exchange, right after the allgather: partition
        ``p`` lives in rank ``p mod n_ranks``'s window, after all the lower
        partitions that rank owns.  Every rank derives the same table
        locally — no synchronization.
        """
        bases = np.zeros(self.n_partitions, dtype=np.int64)
        for rank in range(n_ranks):
            owned = np.arange(rank, self.n_partitions, n_ranks)
            sizes = global_counts[owned]
            bases[owned] = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        return bases

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        ctx.set_phase(self.assigned_phase)
        comm = ctx.comm
        n_ranks = comm.n_ranks
        local_counts = read_histogram(ctx, self.upstreams[1], self.n_partitions)
        global_counts = read_histogram(ctx, self.upstreams[2], self.n_partitions)

        ctx.set_phase(self.assigned_phase)
        gathered = comm.allgather(local_counts, payload_bytes=local_counts.nbytes)
        matrix = np.stack(gathered)  # [source rank, partition] -> count
        if not np.array_equal(matrix.sum(axis=0), global_counts):
            raise ExecutionError(
                "global histogram disagrees with the sum of local histograms; "
                "the histogram upstreams were not computed over the same input"
            )

        # One-shot layout: base offset of every partition in its owner's
        # window, shared by all sends instead of being rebuilt per put.
        partition_base = self._layout_table(global_counts, n_ranks)
        capacity = int(
            global_counts[np.arange(comm.rank, self.n_partitions, n_ranks)].sum()
        )
        windows = comm.win_create(self._wire_type, capacity)

        # Exclusive write offset of this rank inside every partition region.
        my_prefix = matrix[: comm.rank].sum(axis=0)

        total = 0
        pending: dict[int, int] = {}  # pid -> rows already sent by this rank
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) == 0:
                continue
            total += len(batch)
            ctx.charge_cpu(self, "partition", len(batch))
            buckets = self.partition_fn.map_batch(batch)
            # One stable counting-sort scatter per batch: a single gather
            # makes every partition's share one contiguous region, and the
            # sends consume zero-copy slice views of it.
            order = np.argsort(buckets, kind="stable")
            scattered = batch.take(order)
            counts = np.bincount(buckets, minlength=self.n_partitions)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            for pid in np.flatnonzero(counts):
                pid = int(pid)
                rows = scattered.slice(int(offsets[pid]), int(offsets[pid + 1]))
                self._send_partition(
                    ctx, windows, partition_base, my_prefix, pending, pid, rows
                )
        if total != int(local_counts.sum()):
            raise ExecutionError(
                f"data upstream produced {total} tuples but the local histogram "
                f"promised {int(local_counts.sum())}"
            )

        ctx.set_phase(self.assigned_phase)
        windows.fence()

        # Columnar drain: ⟨pid, data⟩ assembled directly from the owned
        # partition ids and the window's zero-copy read views — no
        # per-partition builder appends, no row pythonization.
        owned = np.arange(comm.rank, self.n_partitions, n_ranks, dtype=np.int64)
        partitions = np.empty(len(owned), dtype=object)
        for i, pid in enumerate(owned):
            base = int(partition_base[pid])
            partitions[i] = windows.local.read(base, base + int(global_counts[pid]))
        yield RowVector(self.output_type, [owned, partitions])

    def _send_partition(
        self,
        ctx: ExecutionContext,
        windows,
        partition_base: np.ndarray,
        my_prefix: np.ndarray,
        pending: dict[int, int],
        pid: int,
        rows: RowVector,
    ) -> None:
        """Compress and put one partition's share of a batch."""
        comm = ctx.comm
        target = pid % comm.n_ranks
        if self.compression is not None:
            ctx.charge_cpu(self, "map", len(rows))
            rows = self.compression.pack_batch(rows)
        metrics = ctx.metrics
        if metrics is not None:
            # Wire volume after compression — what actually travels.
            metrics.counter("shuffle_rows", op=type(self).__name__).add(len(rows))
            metrics.counter("shuffle_bytes", op=type(self).__name__).add(
                rows.size_bytes()
            )
            metrics.histogram(
                "shuffle_send_rows", bounds=_SEND_ROWS_BOUNDS
            ).observe(len(rows))
        sent = pending.get(pid, 0)
        base = int(partition_base[pid]) + int(my_prefix[pid]) + sent
        ctx.set_phase(self.assigned_phase)
        for start in range(0, len(rows), BUFFER_ROWS):
            chunk = rows.slice(start, min(start + BUFFER_ROWS, len(rows)))
            windows.put(target, base + start, chunk)
        pending[pid] = sent + len(rows)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for batch in self.batches(ctx):
            yield from batch.iter_rows()
