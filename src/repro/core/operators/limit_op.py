"""Limit: pass through at most N tuples, then stop pulling.

A driver-side post-processing operator (the paper's §3.4: after the
data-parallel part, the driver does "simple post-processing steps, such as
merging the results").  Limit short-circuits its upstream: once N tuples
are out, no further upstream work happens.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.errors import TypeCheckError
from repro.types.collections import RowVector

__all__ = ["Limit"]


class Limit(Operator):
    """Yield the first ``n`` upstream tuples."""

    abbreviation = "LT"

    def __init__(self, upstream: Operator, n: int) -> None:
        super().__init__(upstreams=(upstream,))
        if n < 0:
            raise TypeCheckError(f"limit must be non-negative, got {n}")
        self.n = n
        self._output_type = upstream.output_type

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self.n == 0:
            return
        emitted = 0
        for row in self.upstreams[0].rows(ctx):
            yield row
            emitted += 1
            if emitted >= self.n:
                return

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        if self.n == 0:
            return
        remaining = self.n
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) >= remaining:
                yield batch.slice(0, remaining)
                return
            if len(batch):
                yield batch
                remaining -= len(batch)
