"""NicPartialAggregate: a smart-NIC offload sub-operator (extension).

The paper's introduction names exactly this as the pay-off of the
sub-operator design: *"using smart NICs ... to execute (partial)
aggregations ... should be possible by introducing a single
target-specific sub-operator to handle the data transfer, while reusing
existing operators for the remaining logic."*

This operator is that single target-specific sub-operator.  Semantically
it is a partial ``ReduceByKey`` (a combiner) placed in front of the
network exchange, shrinking the stream to one tuple per key before any
histogram is computed or byte is transmitted.  What makes it
platform-specific is only its *cost*: the aggregation runs on the NIC's
cores — slower per tuple than the host, but largely overlapped with the
host's partitioning work — so the host clock is charged just the
non-overlapped remainder, at NIC rates, with no CPU jitter.

Everything downstream (LocalHistogram, MpiHistogram, MpiExchange, the
nested partition/aggregate plans) is reused unchanged.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.context import ExecutionContext
from repro.core.functions import ReduceFunction
from repro.core.operator import Operator
from repro.core.operators.reduce_ops import ReduceByKey
from repro.types.collections import RowVector

__all__ = ["NicPartialAggregate"]


class NicPartialAggregate(Operator):
    """Combine tuples per key on the smart NIC before the network transfer.

    Same data semantics as :class:`ReduceByKey`; only the charging differs
    (NIC rates, overlapped with host work, attributed to the
    network-partitioning phase it accelerates).
    """

    abbreviation = "NA"
    phase_name = "network_partition"

    def __init__(
        self,
        upstream: Operator,
        key_fields: Sequence[str] | str,
        fn: ReduceFunction,
    ) -> None:
        super().__init__(upstreams=(upstream,))
        # Delegate the data path to a private ReduceByKey over the same
        # upstream; this operator only re-owns the cost accounting.
        self._combiner = ReduceByKey(upstream, key_fields, fn)
        self._output_type = self._combiner.output_type

    def _charge_nic(self, ctx: ExecutionContext, tuples: int) -> None:
        if tuples <= 0:
            return
        ctx.set_phase(self.assigned_phase)
        seconds = tuples * ctx.cost.nic_agg_tuple * (1.0 - ctx.cost.nic_overlap)
        ctx.clock.advance(seconds)  # NIC-paced: no host CPU jitter

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        yield from self._with_nic_billing(ctx, batched=False)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        yield from self._with_nic_billing(ctx, batched=True)

    def _with_nic_billing(self, ctx: ExecutionContext, batched: bool):
        """Run the combiner with its CPU charge replaced by the NIC charge.

        The upstream is drained normally (the host still reads its data and
        pays its scan costs); the aggregation itself is then billed to the
        NIC and the combiner runs under a context whose CPU charges are
        muted, so the host never pays hash-aggregation rates for it.
        """
        upstream = self.upstreams[0]
        if batched:
            parts = [b for b in upstream.stream_batches(ctx) if len(b)]
            input_count = sum(len(b) for b in parts)
            source = _Replay(upstream.output_type, parts)
        else:
            rows = list(upstream.rows(ctx))
            input_count = len(rows)
            source = _Replay(upstream.output_type, [
                RowVector.from_rows(upstream.output_type, rows)
            ])
        combiner = ReduceByKey(source, self._combiner.key_fields, self._combiner.fn)
        combiner.assigned_phase = self.assigned_phase
        combiner.pipeline_size = self.pipeline_size
        self._charge_nic(ctx, input_count)
        quiet = _QuietContext(ctx)
        if batched:
            yield from combiner.batches(quiet)
        else:
            yield from combiner.rows(quiet)


class _Replay(Operator):
    """Serve already-drained batches (internal to the NIC operator)."""

    abbreviation = "__"

    def __init__(self, element_type, parts: list[RowVector]) -> None:
        super().__init__(upstreams=())
        self._output_type = element_type
        self._parts = parts

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        if not self._parts:
            yield RowVector.empty(self.output_type)
            return
        yield from self._parts

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for part in self._parts:
            yield from part.iter_rows()


class _QuietContext:
    """Context proxy whose CPU charges are no-ops (the NIC already paid)."""

    def __init__(self, inner: ExecutionContext) -> None:
        self._inner = inner

    def charge_cpu(self, op, kind: str, tuples: int) -> None:
        return None

    def charge_materialize(self, op, payload_bytes: int) -> None:
        return None

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
