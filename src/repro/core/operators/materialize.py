"""MaterializeRowVector: collect a stream into one collection (§3.3.4).

The counterpart of ``RowScan`` and the operator that ends every nested
plan: it consumes the whole upstream, builds a ``RowVector``, and returns a
*single* tuple whose one field holds that collection.  It charges the
memory-bandwidth cost of the copy (with the realloc growth amplification
the paper observes in §5.1.2).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.types.collections import RowVector, RowVectorBuilder, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["MaterializeRowVector"]


class MaterializeRowVector(Operator):
    """Materialize upstream tuples into a RowVector, returned as one tuple.

    Args:
        upstream: The stream to materialize.
        field: Name of the single output field holding the collection.
    """

    abbreviation = "MR"
    phase_name = "materialize"

    def __init__(self, upstream: Operator, field: str = "data") -> None:
        super().__init__(upstreams=(upstream,))
        self.field = field
        collection = row_vector_type(upstream.output_type)
        self._output_type = TupleType.of(**{field: collection})

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        builder = RowVectorBuilder(self.upstreams[0].output_type)
        for row in self.upstreams[0].rows(ctx):
            builder.append(row)
        vector = builder.finish()
        ctx.charge_materialize(self, vector.size_bytes())
        yield (vector,)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        element_type = self.upstreams[0].output_type
        vector = RowVector.concat(
            element_type, list(self.upstreams[0].stream_batches(ctx))
        )
        ctx.charge_materialize(self, vector.size_bytes())
        out = RowVectorBuilder(self.output_type)
        out.append((vector,))
        yield out.finish()
