"""MaterializeRowVector: collect a stream into one collection (§3.3.4).

The counterpart of ``RowScan`` and the operator that ends every nested
plan: it consumes the whole upstream, builds a ``RowVector``, and returns a
*single* tuple whose one field holds that collection.  It charges the
memory-bandwidth cost of the copy (with the realloc growth amplification
the paper observes in §5.1.2).

Materialization points are also the engine's recovery boundaries: when a
worker runs under pipeline-level recovery (:mod:`repro.faults`), each
finished collection is deposited into the stage's
:class:`~repro.faults.checkpoint.CheckpointStore`, and a stage
re-execution serves sealed checkpoints instead of recomputing the
upstream pipeline — paying only the copy cost of re-reading them.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.types.collections import RowVector, RowVectorBuilder, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["MaterializeRowVector"]


class MaterializeRowVector(Operator):
    """Materialize upstream tuples into a RowVector, returned as one tuple.

    Args:
        upstream: The stream to materialize.
        field: Name of the single output field holding the collection.
    """

    abbreviation = "MR"
    phase_name = "materialize"

    def __init__(self, upstream: Operator, field: str = "data") -> None:
        super().__init__(upstreams=(upstream,))
        self.field = field
        collection = row_vector_type(upstream.output_type)
        self._output_type = TupleType.of(**{field: collection})

    # -- checkpointing (pipeline-level recovery) ------------------------------

    def _checkpoint_store(self, ctx: ExecutionContext):
        """The stage's checkpoint store, or None outside the worker top scope.

        Eligibility requires exactly the enclosing MPI executor's own input
        binding to be active: nested ``NestedMap`` invocations run once per
        input tuple and have no stable cross-attempt identity to key on.
        """
        store = ctx.checkpoints
        if store is None or store.slot_id != ctx.single_binding_slot():
            return None
        return store

    def _serve_checkpoint(
        self, ctx: ExecutionContext, vector: RowVector
    ) -> RowVector:
        """Charge the re-read of a sealed checkpoint and trace the hit."""
        start = ctx.clock.now
        ctx.charge_materialize(self, vector.size_bytes())
        ctx.account_memory(vector.owned_bytes())
        metrics = ctx.metrics
        if metrics is not None:
            metrics.counter("checkpoint_hits").inc()
        rank_ctx = ctx.rank_ctx
        trace = rank_ctx.comm.world.trace if rank_ctx is not None else None
        if trace is not None:
            from repro.mpi.trace import TraceEvent
            from repro.observability.events import RecoveryDetail

            trace.record(
                TraceEvent(
                    rank=ctx.rank,
                    kind="recovery",
                    label="checkpoint_hit",
                    start=start,
                    end=ctx.clock.now,
                    detail=RecoveryDetail(action="checkpoint_hit", stage=self.label()),
                )
            )
        return vector

    # -- data path -------------------------------------------------------------

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        store = self._checkpoint_store(ctx)
        if store is not None:
            cached = store.lookup(id(self), ctx.rank)
            if cached is not None:
                yield (self._serve_checkpoint(ctx, cached),)
                return
        builder = RowVectorBuilder(self.upstreams[0].output_type)
        for row in self.upstreams[0].rows(ctx):
            builder.append(row)
        vector = builder.finish()
        ctx.charge_materialize(self, vector.size_bytes())
        ctx.account_memory(vector.owned_bytes())
        if store is not None:
            store.deposit(id(self), ctx.rank, vector)
        yield (vector,)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        store = self._checkpoint_store(ctx)
        vector = store.lookup(id(self), ctx.rank) if store is not None else None
        if vector is not None:
            self._serve_checkpoint(ctx, vector)
        else:
            # Bulk-append drain: whole morsels flow into the builder via
            # extend_vector, so no row is ever pythonized on this path
            # (and adjacent slice morsels re-merge zero-copy in finish()).
            builder = RowVectorBuilder(self.upstreams[0].output_type)
            for batch in self.upstreams[0].stream_batches(ctx):
                builder.extend_vector(batch)
            vector = builder.finish()
            ctx.charge_materialize(self, vector.size_bytes())
            # Accounting uses owned_bytes: when finish() re-merged the
            # morsel stream into a zero-copy view of upstream storage,
            # no new resident bytes exist to count.
            ctx.account_memory(vector.owned_bytes())
            if store is not None:
                store.deposit(id(self), ctx.rank, vector)
        out = RowVectorBuilder(self.output_type)
        out.append((vector,))
        yield out.finish()
