"""Projection: keep a subset of fields, unmodified (§3.3.2).

A special case of ``Map``, kept as its own operator for plan readability —
exactly as the paper does.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.context import ExecutionContext
from repro.core.operator import Operator, require_fields
from repro.types.collections import RowVector

__all__ = ["Projection"]


class Projection(Operator):
    """Return new tuples keeping only ``fields`` of the upstream tuples."""

    abbreviation = "PR"

    def __init__(self, upstream: Operator, fields: Sequence[str]) -> None:
        super().__init__(upstreams=(upstream,))
        require_fields("Projection", upstream.output_type, fields)
        self.fields = tuple(fields)
        self._positions = tuple(upstream.output_type.position(f) for f in fields)
        self._output_type = upstream.output_type.project(fields)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        positions = self._positions
        count = 0
        try:
            for row in self.upstreams[0].rows(ctx):
                count += 1
                yield tuple(row[p] for p in positions)
        finally:
            ctx.charge_cpu(self, "map", count)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        for batch in self.upstreams[0].stream_batches(ctx):
            ctx.charge_cpu(self, "map", len(batch))
            yield RowVector(
                self.output_type, [batch.columns[p] for p in self._positions]
            )
