"""RowScan: unnest a collection field into a stream of tuples (§3.3.4).

The basic input-reading operator of Modularis.  Its upstream produces
tuples that contain a ``RowVector`` collection; RowScan yields the rows of
each such collection, one at a time (or as zero-copy morsels on the fused
path).  Together with ``MaterializeRowVector`` it is the *only* data
processing operator that knows the physical layout of a RowVector —
design principle 2 of Section 3.1.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator, require_collection_field
from repro.types.collections import RowVector

__all__ = ["RowScan"]


class RowScan(Operator):
    """Yield the element tuples of each collection arriving from upstream.

    Args:
        upstream: Operator producing tuples with a collection field.
        field: Name of the collection field; may be omitted when the
            upstream tuples have exactly one field.
        shard_by_rank: When executing inside an MPI worker, scan only this
            rank's contiguous block of each collection — the paper's "each
            process reads its part of the input" for base tables that every
            worker can reach (shared file system / NFS in the paper).
    """

    abbreviation = "RS"

    def __init__(
        self,
        upstream: Operator,
        field: str | None = None,
        shard_by_rank: bool = False,
    ) -> None:
        super().__init__(upstreams=(upstream,))
        self.field = require_collection_field("RowScan", upstream.output_type, field)
        self.shard_by_rank = shard_by_rank
        self._position = upstream.output_type.position(self.field)
        self._output_type = upstream.output_type[self.field].element_type
        # Wide rows cost proportionally more to stream through memory; the
        # cost model's per-tuple scan rate is calibrated for the paper's
        # 16-byte workload tuples.
        self._scan_weight = max(1, round(self._output_type.row_size_bytes() / 16))

    def _shard(self, ctx: ExecutionContext, collection: RowVector) -> RowVector:
        if not self.shard_by_rank or ctx.n_ranks == 1:
            return collection
        base, extra = divmod(len(collection), ctx.n_ranks)
        start = ctx.rank * base + min(ctx.rank, extra)
        stop = start + base + (1 if ctx.rank < extra else 0)
        return collection.slice(start, stop)

    def _collections(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        metrics = ctx.metrics
        for row in self.upstreams[0].stream(ctx):
            collection = row[self._position]
            if collection.element_type != self.output_type:
                # Cannot happen for plans that passed type checking, but a
                # corrupted collection must not silently mis-scan.
                raise TypeError(
                    f"RowScan expected {self.output_type!r} elements, "
                    f"found {collection.element_type!r}"
                )
            sharded = self._shard(ctx, collection)
            if metrics is not None:
                metrics.counter("scan_rows", op=type(self).__name__).add(
                    len(sharded)
                )
                metrics.counter("scan_bytes", op=type(self).__name__).add(
                    sharded.size_bytes()
                )
            yield sharded

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for collection in self._collections(ctx):
            ctx.charge_cpu(self, "scan", len(collection) * self._scan_weight)
            yield from collection.iter_rows()

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        morsel_rows = ctx.morsel_rows_for(self.output_type)
        for collection in self._collections(ctx):
            ctx.charge_cpu(self, "scan", len(collection) * self._scan_weight)
            if len(collection) <= morsel_rows:
                yield collection
            else:
                for start in range(0, len(collection), morsel_rows):
                    yield collection.slice(
                        start, min(start + morsel_rows, len(collection))
                    )
