"""CartesianProduct: all combinations of two upstreams (§3.3.2).

In the paper's plans the left side always carries a single tuple (the
network partition ID), so the product is used to *augment* a stream with a
constant field rather than to blow up cardinality.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.types.tuples import concat_tuple_types

__all__ = ["CartesianProduct"]


class CartesianProduct(Operator):
    """Concatenate every left tuple with every right tuple.

    Field names must be distinct across the two sides; output fields
    preserve their names and types.
    """

    abbreviation = "CP"

    def __init__(self, left: Operator, right: Operator) -> None:
        super().__init__(upstreams=(left, right))
        self._output_type = concat_tuple_types(left.output_type, right.output_type)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        left_rows = list(self.upstreams[0].stream(ctx))
        count = 0
        try:
            for right_row in self.upstreams[1].stream(ctx):
                for left_row in left_rows:
                    count += 1
                    yield left_row + right_row
        finally:
            ctx.charge_cpu(self, "map", count)

    batches = Operator.batches
