"""LocalPartitioning: split a stream into materialized partitions (§3.3.4).

Consumes the data to partition and its (local) histogram; the histogram
provides the exact per-partition sizes, so the operator computes prefix
offsets once and then scatters tuples into pre-sized partition buffers —
the cache-conscious radix-partitioning routine of the monolithic joins,
factored out as a reusable building block (design principle 1).

Yields one ⟨partitionID, partitionData⟩ pair per partition, in increasing
partition order (the dense, ordered sequence that ``Zip`` relies on).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.functions import PartitionFunction
from repro.core.operator import Operator, require_fields
from repro.core.operators.local_histogram import HISTOGRAM_TYPE, read_histogram
from repro.errors import ExecutionError, TypeCheckError
from repro.types.atoms import INT64
from repro.types.collections import RowVector, RowVectorBuilder, row_vector_type
from repro.types.tuples import TupleType

__all__ = ["LocalPartitioning"]


class LocalPartitioning(Operator):
    """Partition upstream tuples using a histogram for exact pre-sizing.

    Args:
        data: Upstream producing the tuples to partition.
        histogram: Upstream producing ⟨bucketID, count⟩ pairs (usually a
            ``LocalHistogram`` over the same input, isolated in its own
            pipeline because the input has two consumers).
        partition_fn: The same function object the histogram used.
        id_field / data_field: Output field names, so plans can give the two
            join sides distinct names before zipping them.
    """

    abbreviation = "LP"
    phase_name = "local_partition"

    def __init__(
        self,
        data: Operator,
        histogram: Operator,
        partition_fn: PartitionFunction,
        id_field: str = "partition",
        data_field: str = "data",
    ) -> None:
        super().__init__(upstreams=(data, histogram))
        require_fields("LocalPartitioning", histogram.output_type, ("bucket", "count"))
        if histogram.output_type != HISTOGRAM_TYPE:
            raise TypeCheckError(
                f"LocalPartitioning histogram upstream must produce {HISTOGRAM_TYPE!r}, "
                f"got {histogram.output_type!r}"
            )
        self.partition_fn = partition_fn
        if hasattr(partition_fn, "bind"):
            partition_fn.bind(data.output_type)
        self.id_field = id_field
        self.data_field = data_field
        self._output_type = TupleType.of(
            **{id_field: INT64, data_field: row_vector_type(data.output_type)}
        )

    @property
    def n_partitions(self) -> int:
        return self.partition_fn.n_partitions

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        counts = read_histogram(ctx, self.upstreams[1], self.n_partitions)
        element_type = self.upstreams[0].output_type
        builders = [RowVectorBuilder(element_type) for _ in range(self.n_partitions)]
        fn = self.partition_fn
        total = 0
        for row in self.upstreams[0].rows(ctx):
            total += 1
            builders[fn(row)].append(row)
        ctx.charge_cpu(self, "partition", total)
        for pid, builder in enumerate(builders):
            if len(builder) != counts[pid]:
                raise ExecutionError(
                    f"partition {pid} holds {len(builder)} tuples but the histogram "
                    f"promised {counts[pid]}; data and histogram upstreams diverged"
                )
            vector = builder.finish()
            ctx.charge_materialize(self, vector.size_bytes())
            yield (pid, vector)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        counts = read_histogram(ctx, self.upstreams[1], self.n_partitions)
        element_type = self.upstreams[0].output_type
        data = RowVector.concat(
            element_type, list(self.upstreams[0].stream_batches(ctx))
        )
        ctx.charge_cpu(self, "partition", len(data))

        buckets = (
            self.partition_fn.map_batch(data)
            if len(data)
            else np.empty(0, dtype=np.int64)
        )
        observed = np.bincount(buckets, minlength=self.n_partitions)
        if not np.array_equal(observed, counts):
            raise ExecutionError(
                "partition sizes diverge from the histogram; data and histogram "
                "upstreams were not computed over the same input"
            )
        # One stable counting-sort scatter: a single gather lays every
        # partition out as one contiguous region, and each emitted
        # partition is a zero-copy slice view of that region.
        order = np.argsort(buckets, kind="stable")
        scattered = data.take(order)
        offsets = np.concatenate(([0], np.cumsum(counts)))

        partitions = np.empty(self.n_partitions, dtype=object)
        for pid in range(self.n_partitions):
            vector = scattered.slice(int(offsets[pid]), int(offsets[pid + 1]))
            ctx.charge_materialize(self, vector.size_bytes())
            partitions[pid] = vector
        yield RowVector(
            self.output_type,
            [np.arange(self.n_partitions, dtype=np.int64), partitions],
        )
