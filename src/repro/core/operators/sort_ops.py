"""Sort-based sub-operators: LocalSort and MergeJoin.

The paper names "(partial) sorting" among the operations that fine-grained
sub-operators make offloadable and re-composable (§1), and its related
work revisits the classic sort-vs-hash join question [Kim et al.].  These
two operators let the same distributed join plan of Figure 3 swap its
innermost hash build/probe for a sort-merge join by replacing exactly one
plan fragment — the ablation in ``benchmarks/test_sort_vs_hash.py``.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.operator import Operator, require_fields
from repro.errors import ExecutionError, TypeCheckError
from repro.types.collections import RowVector
from repro.types.tuples import concat_tuple_types

__all__ = ["LocalSort", "MergeJoin"]


class LocalSort(Operator):
    """Materialize and sort the upstream by ``keys``.

    A blocking operator: it consumes its whole input before emitting the
    first tuple.  The cost model charges ``n · log2(n)`` comparison steps,
    the textbook in-cache sort cost.
    """

    abbreviation = "LS"
    phase_name = "sort"

    def __init__(
        self,
        upstream: Operator,
        keys: Sequence[str] | str,
        descending: bool | Sequence[bool] = False,
    ) -> None:
        super().__init__(upstreams=(upstream,))
        if isinstance(keys, str):
            keys = (keys,)
        if not keys:
            raise TypeCheckError("LocalSort needs at least one sort key")
        require_fields("LocalSort", upstream.output_type, keys)
        self.keys = tuple(keys)
        if isinstance(descending, bool):
            self.descending = (descending,) * len(self.keys)
        else:
            self.descending = tuple(descending)
            if len(self.descending) != len(self.keys):
                raise TypeCheckError(
                    "per-key sort directions must match the number of keys"
                )
        self._positions = tuple(upstream.output_type.position(k) for k in self.keys)
        self._output_type = upstream.output_type

    def _charge(self, ctx: ExecutionContext, n: int) -> None:
        if n > 1:
            ctx.charge_cpu(self, "sort", n * max(1, math.ceil(math.log2(n))))

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        data = list(self.upstreams[0].rows(ctx))
        self._charge(ctx, len(data))
        # Stable multi-pass sort: apply keys from least to most significant
        # so mixed per-key directions compose correctly.
        for position, desc in reversed(list(zip(self._positions, self.descending))):
            data.sort(key=lambda row, p=position: row[p], reverse=desc)
        yield from data

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        data = self.upstreams[0].drain(ctx)
        self._charge(ctx, len(data))
        if len(data) == 0:
            yield data
            return
        key_columns = []
        for position, desc in zip(reversed(self._positions), reversed(self.descending)):
            column = data.columns[position]
            if desc:
                if column.dtype.kind not in "iuf":
                    raise TypeCheckError(
                        "descending sort keys must be numeric in fused mode; "
                        f"column {data.element_type.field_names[position]!r} is not"
                    )
                column = -column
            key_columns.append(column)
        order = np.lexsort(key_columns)
        yield data.take(order)


class MergeJoin(Operator):
    """Join two *sorted* inputs on a single key by merging (§ sort-vs-hash).

    Both upstreams must arrive sorted ascending by ``key`` (violations are
    detected at runtime).  Output layout matches ``BuildProbe``: the key,
    the remaining left fields, then the remaining right fields.  The merge
    costs one sequential step per input/output tuple — cheaper per tuple
    than hash probing, which is the whole point of sorting first.
    """

    abbreviation = "MJ"
    phase_name = "build_probe"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        key: str,
        join_type: str = "inner",
    ) -> None:
        super().__init__(upstreams=(left, right))
        if join_type not in ("inner", "semi", "anti"):
            raise TypeCheckError(f"MergeJoin does not support join type {join_type!r}")
        left_type, right_type = left.output_type, right.output_type
        require_fields("MergeJoin", left_type, (key,))
        require_fields("MergeJoin", right_type, (key,))
        if left_type[key] != right_type[key]:
            raise TypeCheckError(
                f"join key {key!r} has type {left_type[key]!r} on the left but "
                f"{right_type[key]!r} on the right"
            )
        self.key = key
        self.join_type = join_type
        key_type = left_type.project((key,))
        left_rest = left_type.drop((key,))
        right_rest = right_type.drop((key,))
        self._left_key = left_type.position(key)
        self._right_key = right_type.position(key)
        self._left_rest = tuple(left_type.position(f) for f in left_rest.field_names)
        self._right_rest = tuple(
            right_type.position(f) for f in right_rest.field_names
        )
        if join_type in ("semi", "anti"):
            self._output_type = concat_tuple_types(key_type, right_rest)
        else:
            self._output_type = concat_tuple_types(
                concat_tuple_types(key_type, left_rest), right_rest
            )

    @staticmethod
    def _check_sorted(keys: np.ndarray, side: str) -> None:
        if len(keys) > 1 and not (keys[1:] >= keys[:-1]).all():
            raise ExecutionError(
                f"MergeJoin {side} input is not sorted by the join key; "
                "insert a LocalSort upstream"
            )

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        left = self.upstreams[0].drain(ctx)
        right = self.upstreams[1].drain(ctx)
        left_keys = np.asarray(left.columns[self._left_key])
        right_keys = np.asarray(right.columns[self._right_key])
        self._check_sorted(left_keys, "left")
        self._check_sorted(right_keys, "right")

        lo = np.searchsorted(left_keys, right_keys, side="left")
        hi = np.searchsorted(left_keys, right_keys, side="right")
        match_counts = hi - lo

        if self.join_type in ("semi", "anti"):
            keep = match_counts > 0 if self.join_type == "semi" else match_counts == 0
            ctx.charge_cpu(self, "merge", len(left) + len(right))
            idx = np.flatnonzero(keep)
            columns = [right_keys[idx]]
            columns += [right.columns[p][idx] for p in self._right_rest]
            yield RowVector(self.output_type, columns)
            return

        emitted = int(match_counts.sum())
        ctx.charge_cpu(self, "merge", len(left) + len(right) + emitted)
        right_idx = np.repeat(np.arange(len(right)), match_counts)
        offsets = np.repeat(hi - np.cumsum(match_counts), match_counts)
        left_idx = np.arange(emitted) + offsets
        columns = [right_keys[right_idx]]
        columns += [left.columns[p][left_idx] for p in self._left_rest]
        columns += [right.columns[p][right_idx] for p in self._right_rest]
        yield RowVector(self.output_type, columns)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for batch in self.batches(ctx):
            yield from batch.iter_rows()
