"""Zip: positionally combine the tuples of several upstreams (§3.3.2).

The paper's plans use Zip to glue corresponding ⟨partitionID, data⟩ pairs of
the two join sides into single tuples before handing them to a NestedMap —
relying on partitions being "produced in dense, ordered sequence".
"""

from __future__ import annotations

from functools import reduce
from typing import Iterator, Sequence

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.errors import ExecutionError, TypeCheckError
from repro.types.tuples import concat_tuple_types

__all__ = ["Zip"]

_DONE = object()


class Zip(Operator):
    """For each output, consume one tuple from every upstream and concatenate.

    Field names across upstreams must be distinct (checked at plan build);
    upstreams yielding different numbers of tuples is a *runtime* error,
    exactly as specified by the paper.
    """

    abbreviation = "ZP"

    def __init__(self, upstreams: Sequence[Operator]) -> None:
        super().__init__(upstreams=tuple(upstreams))
        if len(self.upstreams) < 2:
            raise TypeCheckError(f"Zip needs >= 2 upstreams, got {len(self.upstreams)}")
        self._output_type = reduce(
            concat_tuple_types, (u.output_type for u in self.upstreams)
        )

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        iterators = [u.stream(ctx) for u in self.upstreams]
        count = 0
        try:
            while True:
                parts = [next(it, _DONE) for it in iterators]
                finished = sum(1 for p in parts if p is _DONE)
                if finished == len(parts):
                    break
                if finished:
                    raise ExecutionError(
                        f"Zip upstreams returned different numbers of tuples "
                        f"(mismatch after {count} tuples)"
                    )
                count += 1
                yield tuple(v for part in parts for v in part)
        finally:
            ctx.charge_cpu(self, "map", count)

    # Zip is plumbing between materialization points in every plan of the
    # paper; the row path is also the fused path.
    batches = Operator.batches
