"""BuildProbe: in-memory hash join of two upstreams (§3.3.2).

Builds a hash table from the *left* upstream on the join attributes, then
streams the *right* upstream probing it.  This single operator is where
join-variant semantics live; supporting semi/anti/outer joins means
changing only the small probe policy below — the extensibility argument of
paper Section 5.1.1 ("to support other join types we only need to modify
the HashProbe operator that consists of 103 lines").

The fused data path delegates to the vectorized hash-join kernel
(:mod:`repro.core.kernels.hash_join`): a single stable sort of the build
side by hash value, then per-morsel ``searchsorted`` probes — the
operator never materializes the probe side.  The operator owns the join's
plan-level contract (types, policies, cost charging); the kernel owns the
numpy machinery.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.kernels.hash_join import HashJoinSpec, outer_tail
from repro.core.kernels.radix_join import select_join_kernel
from repro.core.operator import Operator, require_fields
from repro.errors import TypeCheckError
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import concat_tuple_types

__all__ = ["BuildProbe", "JOIN_TYPES"]

#: Supported join variants.  ``inner`` emits matching combinations;
#: ``semi``/``anti`` emit right tuples with/without a build-side match;
#: ``left_outer`` additionally emits unmatched build tuples padded with
#: ``outer_fill`` on the probe side.
JOIN_TYPES = ("inner", "semi", "anti", "left_outer")


class BuildProbe(Operator):
    """Join left and right upstreams on equal values of ``keys``.

    Output tuples consist of the join attributes followed by the remaining
    left fields and the remaining right fields; the non-key field names of
    the two sides must be distinct.
    """

    abbreviation = "BP"
    phase_name = "build_probe"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        keys: tuple[str, ...] | str,
        join_type: str = "inner",
        outer_fill: object = 0,
    ) -> None:
        super().__init__(upstreams=(left, right))
        if isinstance(keys, str):
            keys = (keys,)
        if not keys:
            raise TypeCheckError("BuildProbe needs at least one join attribute")
        if join_type not in JOIN_TYPES:
            raise TypeCheckError(
                f"unknown join type {join_type!r}; supported: {JOIN_TYPES}"
            )
        left_type, right_type = left.output_type, right.output_type
        require_fields("BuildProbe", left_type, keys)
        require_fields("BuildProbe", right_type, keys)
        for key in keys:
            if left_type[key] != right_type[key]:
                raise TypeCheckError(
                    f"join attribute {key!r} has type {left_type[key]!r} on the left "
                    f"but {right_type[key]!r} on the right"
                )
        self.keys = tuple(keys)
        self.join_type = join_type
        self.outer_fill = outer_fill

        key_type = left_type.project(self.keys)
        left_rest = left_type.drop(self.keys)
        right_rest = right_type.drop(self.keys)
        self._left_key_pos = tuple(left_type.position(k) for k in self.keys)
        self._left_rest_pos = tuple(
            left_type.position(f) for f in left_rest.field_names
        )
        self._right_key_pos = tuple(right_type.position(k) for k in self.keys)
        self._right_rest_pos = tuple(
            right_type.position(f) for f in right_rest.field_names
        )
        if join_type in ("semi", "anti"):
            self._output_type = concat_tuple_types(key_type, right_rest)
        else:
            self._output_type = concat_tuple_types(
                concat_tuple_types(key_type, left_rest), right_rest
            )

    # -- scalar implementation ----------------------------------------------------

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        build_order: list[tuple[tuple, tuple]] = []
        built = 0
        for row in self.upstreams[0].rows(ctx):
            built += 1
            key = tuple(row[p] for p in self._left_key_pos)
            rest = tuple(row[p] for p in self._left_rest_pos)
            table.setdefault(key, []).append(rest)
            build_order.append((key, rest))
        ctx.charge_cpu(self, "build", built)
        metrics = ctx.metrics
        if metrics is not None:
            metrics.counter("join_dispatch", path="scalar").inc()
            metrics.counter("join_build_rows", op=type(self).__name__).add(built)

        matched_keys: set[tuple] = set()
        probed = 0
        emitted = 0
        try:
            for row in self.upstreams[1].rows(ctx):
                probed += 1
                key = tuple(row[p] for p in self._right_key_pos)
                right_rest = tuple(row[p] for p in self._right_rest_pos)
                hits = table.get(key)
                if self.join_type == "semi":
                    if hits:
                        emitted += 1
                        yield key + right_rest
                elif self.join_type == "anti":
                    if not hits:
                        emitted += 1
                        yield key + right_rest
                else:
                    if hits:
                        matched_keys.add(key)
                        for left_rest in hits:
                            emitted += 1
                            yield key + left_rest + right_rest
        finally:
            ctx.charge_cpu(self, "probe", probed + emitted)

        if self.join_type == "left_outer":
            fill = (self.outer_fill,) * len(self._right_rest_pos)
            # Unmatched build rows are emitted in build-insertion order,
            # matching the sorted-by-hash kernel (stable sort, key runs).
            for key, left_rest in build_order:
                if key not in matched_keys:
                    yield key + left_rest + fill

    # -- fused implementation -------------------------------------------------------

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        vectorizable = (
            len(self.keys) == 1
            and self.upstreams[0].output_type[self.keys[0]] == INT64
        )
        if not vectorizable:
            yield from self._rows_as_morsels(ctx)
            return

        spec = HashJoinSpec(
            join_type=self.join_type,
            output_type=self.output_type,
            key=self.keys[0],
            left_rest_pos=self._left_rest_pos,
            right_rest_pos=self._right_rest_pos,
            right_type=self.upstreams[1].output_type,
            outer_fill=self.outer_fill,
        )
        left = RowVector.concat(
            self.upstreams[0].output_type,
            list(self.upstreams[0].stream_batches(ctx)),
        )
        ctx.charge_cpu(self, "build", len(left))
        # The kernels module owns the radix-vs-sorted-hash dispatch; the
        # returned label is the join_dispatch{path} metric value.
        path, build, probe = select_join_kernel(ctx.join_kernel, left, spec.key)
        metrics = ctx.metrics
        if metrics is not None:
            metrics.counter("join_dispatch", path=path).inc()
            metrics.counter("join_build_rows", op=type(self).__name__).add(len(left))

        yielded = False
        for batch in self.upstreams[1].stream_batches(ctx):
            out = probe(build, batch, spec)
            # Every policy charges one unit per probe tuple plus one per
            # emitted tuple — identical to the scalar path's accounting.
            ctx.charge_cpu(self, "probe", len(batch) + len(out))
            if len(out):
                yielded = True
                yield out

        if self.join_type == "left_outer":
            # outer_tail reads only the (order, matched) contract both
            # builds share, so one tail routine serves either kernel.
            tail = outer_tail(build, spec)
            if len(tail):
                yielded = True
                yield tail
        if not yielded:
            yield RowVector.empty(self.output_type)
