"""BuildProbe: in-memory hash join of two upstreams (§3.3.2).

Builds a hash table from the *left* upstream on the join attributes, then
streams the *right* upstream probing it.  This single, 100-line operator is
where join-variant semantics live; supporting semi/anti/outer joins means
changing only the small probe policy below — the extensibility argument of
paper Section 5.1.1 ("to support other join types we only need to modify
the HashProbe operator that consists of 103 lines").
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.operator import Operator, require_fields
from repro.errors import TypeCheckError
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import concat_tuple_types

__all__ = ["BuildProbe", "JOIN_TYPES"]

#: Supported join variants.  ``inner`` emits matching combinations;
#: ``semi``/``anti`` emit right tuples with/without a build-side match;
#: ``left_outer`` additionally emits unmatched build tuples padded with
#: ``outer_fill`` on the probe side.
JOIN_TYPES = ("inner", "semi", "anti", "left_outer")


class BuildProbe(Operator):
    """Join left and right upstreams on equal values of ``keys``.

    Output tuples consist of the join attributes followed by the remaining
    left fields and the remaining right fields; the non-key field names of
    the two sides must be distinct.
    """

    abbreviation = "BP"
    phase_name = "build_probe"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        keys: tuple[str, ...] | str,
        join_type: str = "inner",
        outer_fill: object = 0,
    ) -> None:
        super().__init__(upstreams=(left, right))
        if isinstance(keys, str):
            keys = (keys,)
        if not keys:
            raise TypeCheckError("BuildProbe needs at least one join attribute")
        if join_type not in JOIN_TYPES:
            raise TypeCheckError(
                f"unknown join type {join_type!r}; supported: {JOIN_TYPES}"
            )
        left_type, right_type = left.output_type, right.output_type
        require_fields("BuildProbe", left_type, keys)
        require_fields("BuildProbe", right_type, keys)
        for key in keys:
            if left_type[key] != right_type[key]:
                raise TypeCheckError(
                    f"join attribute {key!r} has type {left_type[key]!r} on the left "
                    f"but {right_type[key]!r} on the right"
                )
        self.keys = tuple(keys)
        self.join_type = join_type
        self.outer_fill = outer_fill

        key_type = left_type.project(self.keys)
        left_rest = left_type.drop(self.keys)
        right_rest = right_type.drop(self.keys)
        self._left_key_pos = tuple(left_type.position(k) for k in self.keys)
        self._left_rest_pos = tuple(
            left_type.position(f) for f in left_rest.field_names
        )
        self._right_key_pos = tuple(right_type.position(k) for k in self.keys)
        self._right_rest_pos = tuple(
            right_type.position(f) for f in right_rest.field_names
        )
        if join_type in ("semi", "anti"):
            self._output_type = concat_tuple_types(key_type, right_rest)
        else:
            self._output_type = concat_tuple_types(
                concat_tuple_types(key_type, left_rest), right_rest
            )

    # -- scalar implementation ----------------------------------------------------

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        built = 0
        for row in self.upstreams[0].rows(ctx):
            built += 1
            key = tuple(row[p] for p in self._left_key_pos)
            rest = tuple(row[p] for p in self._left_rest_pos)
            table.setdefault(key, []).append(rest)
        ctx.charge_cpu(self, "build", built)

        matched_keys: set[tuple] = set()
        probed = 0
        emitted = 0
        for row in self.upstreams[1].rows(ctx):
            probed += 1
            key = tuple(row[p] for p in self._right_key_pos)
            right_rest = tuple(row[p] for p in self._right_rest_pos)
            hits = table.get(key)
            if self.join_type == "semi":
                if hits:
                    emitted += 1
                    yield key + right_rest
            elif self.join_type == "anti":
                if not hits:
                    emitted += 1
                    yield key + right_rest
            else:
                if hits:
                    matched_keys.add(key)
                    for left_rest in hits:
                        emitted += 1
                        yield key + left_rest + right_rest
        ctx.charge_cpu(self, "probe", probed + emitted)

        if self.join_type == "left_outer":
            fill = (self.outer_fill,) * len(self._right_rest_pos)
            for key, hits in table.items():
                if key not in matched_keys:
                    for left_rest in hits:
                        yield key + left_rest + fill

    # -- fused implementation -------------------------------------------------------

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        vectorizable = (
            self.join_type == "inner"
            and len(self.keys) == 1
            and self.upstreams[0].output_type[self.keys[0]] == INT64
        )
        if not vectorizable:
            yield from Operator.batches(self, ctx)
            return
        left = self.upstreams[0].drain(ctx)
        right = self.upstreams[1].drain(ctx)
        ctx.charge_cpu(self, "build", len(left))
        yield self._vector_inner_join(ctx, left, right)

    def _vector_inner_join(
        self, ctx: ExecutionContext, left: RowVector, right: RowVector
    ) -> RowVector:
        """Sort-based equi-join on a single INT64 key, duplicates included."""
        key = self.keys[0]
        if len(left) == 0 or len(right) == 0:
            ctx.charge_cpu(self, "probe", len(right))
            return RowVector.empty(self.output_type)
        left_keys = left.column(key)
        order = np.argsort(left_keys, kind="stable")
        sorted_keys = left_keys[order]
        right_keys = right.column(key)
        lo = np.searchsorted(sorted_keys, right_keys, side="left")
        hi = np.searchsorted(sorted_keys, right_keys, side="right")
        match_counts = hi - lo
        emitted = int(match_counts.sum())
        ctx.charge_cpu(self, "probe", len(right) + emitted)

        right_idx = np.repeat(np.arange(len(right)), match_counts)
        # For each probe row, the run of matching build positions.
        offsets = np.repeat(hi - np.cumsum(match_counts), match_counts)
        left_idx = order[np.arange(emitted) + offsets]

        columns: list[np.ndarray] = [right_keys[right_idx]]
        columns += [left.columns[p][left_idx] for p in self._left_rest_pos]
        columns += [right.columns[p][right_idx] for p in self._right_rest_pos]
        return RowVector(self.output_type, columns)
