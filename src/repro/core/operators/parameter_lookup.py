"""ParameterLookup: the only operator aware of plan inputs (§3.3.1)."""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.errors import TypeCheckError
from repro.types.tuples import TupleType

__all__ = ["ParameterSlot", "ParameterLookup"]

_SLOT_IDS = itertools.count()


class ParameterSlot:
    """A binding point connecting a nested plan to its enclosing operator.

    ``NestedMap`` and ``MpiExecutor`` create one slot per nested plan; the
    plan's ``ParameterLookup`` operators reference the slot and return the
    tuple the enclosing operator bound for the current invocation.  The
    slot's type is the enclosing operator's input tuple type — "a tuple of
    an arbitrary type, which may depend on the upstream types of some outer
    scope" (paper Section 3.3.1).
    """

    __slots__ = ("id", "param_type")

    def __init__(self, param_type: TupleType) -> None:
        if not isinstance(param_type, TupleType):
            raise TypeCheckError(f"parameter type must be a TupleType, got {param_type!r}")
        self.id = next(_SLOT_IDS)
        self.param_type = param_type

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParameterSlot(#{self.id}, {self.param_type!r})"


class ParameterLookup(Operator):
    """Returns the single input tuple of the enclosing nested plan.

    Has no upstreams; produces exactly one tuple per plan invocation.
    """

    abbreviation = "PL"

    def __init__(self, slot: ParameterSlot) -> None:
        super().__init__(upstreams=())
        self.slot = slot
        self._output_type = slot.param_type

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        yield ctx.lookup_parameter(self.slot.id)
