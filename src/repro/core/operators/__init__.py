"""The Modularis sub-operator library (paper Section 3.3).

Nineteen sub-operators in four categories:

* orchestration — :class:`ParameterLookup`, :class:`NestedMap`;
* data processing — :class:`Map`, :class:`ParametrizedMap`,
  :class:`Projection`, :class:`CartesianProduct`, :class:`Filter`,
  :class:`Reduce`, :class:`ReduceByKey`, :class:`Zip`,
  :class:`LocalHistogram`, :class:`BuildProbe`;
* network — :class:`MpiExecutor`, :class:`MpiHistogram`,
  :class:`MpiExchange`, :class:`MpiBroadcast`;
* materialize/scan — :class:`LocalPartitioning`, :class:`RowScan`,
  :class:`MaterializeRowVector`;
* extensions beyond the paper's list — :class:`ChunkScan` /
  :class:`MaterializeChunks` (a second physical format demonstrating design
  principle 2), :class:`LocalSort`, :class:`MergeJoin`
  (the sort-vs-hash ablation) and :class:`NicPartialAggregate` (the smart-NIC
  offload scenario of the paper's §1 future work).
"""

from repro.core.operators.build_probe import JOIN_TYPES, BuildProbe
from repro.core.operators.cartesian_product import CartesianProduct
from repro.core.operators.chunk_ops import ChunkScan, MaterializeChunks
from repro.core.operators.filter_op import Filter
from repro.core.operators.local_histogram import HISTOGRAM_TYPE, LocalHistogram
from repro.core.operators.limit_op import Limit
from repro.core.operators.local_partitioning import LocalPartitioning
from repro.core.operators.map_ops import Map, ParametrizedMap
from repro.core.operators.materialize import MaterializeRowVector
from repro.core.operators.mpi_broadcast import MpiBroadcast
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.operators.mpi_histogram import MpiHistogram
from repro.core.operators.nested_map import NestedMap
from repro.core.operators.nic_aggregate import NicPartialAggregate
from repro.core.operators.parameter_lookup import ParameterLookup, ParameterSlot
from repro.core.operators.projection import Projection
from repro.core.operators.reduce_ops import Reduce, ReduceByKey
from repro.core.operators.row_scan import RowScan
from repro.core.operators.sort_ops import LocalSort, MergeJoin
from repro.core.operators.zip_op import Zip

__all__ = [
    "BuildProbe",
    "JOIN_TYPES",
    "CartesianProduct",
    "ChunkScan",
    "MaterializeChunks",
    "Filter",
    "HISTOGRAM_TYPE",
    "LocalHistogram",
    "Limit",
    "LocalPartitioning",
    "Map",
    "ParametrizedMap",
    "MaterializeRowVector",
    "MpiBroadcast",
    "MpiExchange",
    "MpiExecutor",
    "MpiHistogram",
    "NestedMap",
    "NicPartialAggregate",
    "ParameterLookup",
    "ParameterSlot",
    "Projection",
    "Reduce",
    "ReduceByKey",
    "RowScan",
    "LocalSort",
    "MergeJoin",
    "Zip",
]
