"""NestedMap: execute a nested plan once per input tuple (§3.3.1).

High-level control flow expressed as an operator — design principle 3.
Instead of an imperative "for each pair of matching partitions: join them"
loop inside a monolithic operator, the plan nests a partition-unaware
sub-plan inside a NestedMap and lets the same iterator interface drive it.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.parameter_lookup import ParameterSlot
from repro.errors import ExecutionError, TypeCheckError
from repro.types.collections import RowVector, RowVectorBuilder

__all__ = ["NestedMap"]


class NestedMap(Operator):
    """Run a nested plan independently on each input tuple.

    Args:
        upstream: Producer of the input tuples (each typically carrying
            nested collections, e.g. ⟨partitionID, partitionData⟩ pairs).
        build_inner: Callback receiving a :class:`ParameterSlot` typed with
            the upstream's tuple type; it returns the root operator of the
            nested plan, whose ``ParameterLookup`` operators read that slot.

    Each invocation of the nested plan must produce exactly one output
    tuple (the paper requires nested plans to end with a
    ``MaterializeRowVector``); NestedMap returns one tuple per input tuple,
    typed like the nested root's output.
    """

    abbreviation = "NM"

    def __init__(
        self,
        upstream: Operator,
        build_inner: Callable[[ParameterSlot], Operator],
    ) -> None:
        super().__init__(upstreams=(upstream,))
        self.slot = ParameterSlot(upstream.output_type)
        inner = build_inner(self.slot)
        if not isinstance(inner, Operator):
            raise TypeCheckError(
                f"NestedMap: build_inner must return an Operator for the "
                f"parameter type {self.slot.param_type!r}, got "
                f"{type(inner).__name__}"
            )
        self.inner = inner
        self._output_type = inner.output_type

    def nested_roots(self) -> tuple[Operator, ...]:
        return (self.inner,)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for row in self.upstreams[0].stream(ctx):
            yield self._run_inner(ctx, row)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        # The per-invocation control flow is inherently tuple-at-a-time, but
        # pulling whole morsels keeps the *upstream* pipeline fused and
        # repackages the nested results into morsels for the consumer.
        morsel_rows = ctx.morsel_rows_for(self.output_type)
        builder = RowVectorBuilder(self.output_type)
        emitted = False
        for batch in self.upstreams[0].stream_batches(ctx):
            for row in batch.iter_rows():
                builder.append(self._run_inner(ctx, row))
                if len(builder) >= morsel_rows:
                    yield builder.finish()
                    builder = RowVectorBuilder(self.output_type)
                    emitted = True
        if len(builder) or not emitted:
            yield builder.finish()

    def _run_inner(self, ctx: ExecutionContext, row: tuple) -> tuple:
        ctx.push_parameter(self.slot.id, row)
        try:
            result: tuple | None = None
            for out in self.inner.stream(ctx):
                if result is not None:
                    raise ExecutionError(
                        "nested plan produced more than one tuple; nested plans "
                        "must end with MaterializeRowVector"
                    )
                result = out
            if result is None:
                raise ExecutionError("nested plan produced no output tuple")
            return result
        finally:
            ctx.pop_parameter(self.slot.id)
