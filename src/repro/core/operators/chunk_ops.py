"""Scan/materialize sub-operators for the ChunkedRowVector format.

Design principle 2 of the paper (§3.1): *"Each physical (in-memory)
materialization format is handled by a dedicated set of
read/write/build/... sub-operators.  This decouples the processing of data
from where and how it is stored."*  The worked example in the paper is
that "a single partitioning sub-operator implementation can consume inputs
of two different scan operators".

These two operators are the dedicated set for the chunked format: nothing
else in the library knows what a :class:`ChunkedRowVector` looks like
inside, and any operator that consumes tuples (histograms, filters, joins,
partitioners) works identically behind a ``ChunkScan`` or a ``RowScan`` —
the property ``tests/test_operators_chunks.py`` demonstrates.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.errors import TypeCheckError
from repro.types.collections import ChunkedRowVector, CollectionType, RowVector, chunked_type
from repro.types.tuples import TupleType

__all__ = ["ChunkScan", "MaterializeChunks"]


def _resolve_chunked_field(op_name: str, tuple_type: TupleType, field: str | None) -> str:
    if field is None:
        candidates = [
            f.name
            for f in tuple_type
            if isinstance(f.item_type, CollectionType)
            and f.item_type.kind == "ChunkedRowVector"
        ]
        if len(candidates) != 1:
            raise TypeCheckError(
                f"{op_name}: cannot infer the chunked field of {tuple_type!r}"
            )
        return candidates[0]
    if field not in tuple_type:
        raise TypeCheckError(f"{op_name}: no field {field!r} in {tuple_type!r}")
    item = tuple_type[field]
    if not isinstance(item, CollectionType) or item.kind != "ChunkedRowVector":
        raise TypeCheckError(
            f"{op_name}: field {field!r} is not a ChunkedRowVector collection"
        )
    return field


class ChunkScan(Operator):
    """Yield the element tuples of chunked collections arriving upstream.

    The fused path emits each stored chunk directly as a batch — the
    chunked format is its own natural morsel source.
    """

    abbreviation = "CS"

    def __init__(self, upstream: Operator, field: str | None = None) -> None:
        super().__init__(upstreams=(upstream,))
        self.field = _resolve_chunked_field("ChunkScan", upstream.output_type, field)
        self._position = upstream.output_type.position(self.field)
        self._output_type = upstream.output_type[self.field].element_type
        self._scan_weight = max(1, round(self._output_type.row_size_bytes() / 16))

    def _collections(self, ctx: ExecutionContext) -> Iterator[ChunkedRowVector]:
        for row in self.upstreams[0].stream(ctx):
            collection = row[self._position]
            if collection.element_type != self.output_type:
                raise TypeError(
                    f"ChunkScan expected {self.output_type!r} elements, found "
                    f"{collection.element_type!r}"
                )
            yield collection

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for collection in self._collections(ctx):
            ctx.charge_cpu(self, "scan", len(collection) * self._scan_weight)
            yield from collection.iter_rows()

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        for collection in self._collections(ctx):
            ctx.charge_cpu(self, "scan", len(collection) * self._scan_weight)
            yield from collection.chunks


class MaterializeChunks(Operator):
    """Collect the upstream stream into a ChunkedRowVector of bounded chunks.

    The counterpart of :class:`ChunkScan`; like ``MaterializeRowVector`` it
    returns a single tuple whose one field holds the collection, and it
    charges the memory-bandwidth cost of the copy (without the realloc
    amplification: bounded chunks are allocated at their final size — the
    structural advantage of a paged format).
    """

    abbreviation = "MC"
    phase_name = "materialize"

    def __init__(self, upstream: Operator, chunk_rows: int, field: str = "data") -> None:
        super().__init__(upstreams=(upstream,))
        if chunk_rows < 1:
            raise TypeCheckError(f"chunk size must be positive, got {chunk_rows}")
        self.chunk_rows = chunk_rows
        self.field = field
        self._output_type = TupleType.of(
            **{field: chunked_type(upstream.output_type)}
        )

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for batch in self.batches(ctx):
            yield from batch.iter_rows()

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        from repro.types.collections import RowVectorBuilder

        element_type = self.upstreams[0].output_type
        data = RowVector.concat(
            element_type, list(self.upstreams[0].stream_batches(ctx))
        )
        collection = ChunkedRowVector.from_row_vector(data, self.chunk_rows)
        ctx.set_phase(self.assigned_phase)
        ctx.clock.advance(
            ctx.cost.copy_cost(collection.size_bytes()), jitter=True
        )
        out = RowVectorBuilder(self.output_type)
        out.append((collection,))
        yield out.finish()
