"""Map and ParametrizedMap: per-tuple UDF application (§3.3.2)."""

from __future__ import annotations

from typing import Iterator

from repro.core.context import ExecutionContext
from repro.core.functions import ParamTupleFunction, TupleFunction
from repro.core.operator import Operator
from repro.errors import ExecutionError
from repro.types.collections import RowVector

__all__ = ["Map", "ParametrizedMap"]


class Map(Operator):
    """Apply ``fn`` to every upstream tuple.

    The output type is whatever the function declares for the upstream's
    tuple type — the reproduction's stand-in for the statically typed UDF
    signatures the paper's compiler sees.
    """

    abbreviation = "MP"

    def __init__(self, upstream: Operator, fn: TupleFunction) -> None:
        super().__init__(upstreams=(upstream,))
        self.fn = fn
        self._output_type = fn.output_type_for(upstream.output_type)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        fn = self.fn
        count = 0
        try:
            for row in self.upstreams[0].rows(ctx):
                count += 1
                yield fn(row)
        finally:
            ctx.charge_cpu(self, "map", count)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        for batch in self.upstreams[0].stream_batches(ctx):
            ctx.charge_cpu(self, "map", len(batch))
            yield self.fn.apply_batch(batch, self.output_type)


class ParametrizedMap(Operator):
    """Like ``Map``, but the UDF also receives a parameter tuple.

    The parameter comes from a dedicated second upstream, which must produce
    exactly one tuple; it is passed to every function call.  The paper uses
    this to recover the key bits dropped by the network compression, with
    the ⟨networkPartitionID⟩ tuple as the parameter (Section 4.1.2).
    """

    abbreviation = "PM"

    def __init__(self, upstream: Operator, param_upstream: Operator, fn: ParamTupleFunction) -> None:
        super().__init__(upstreams=(upstream, param_upstream))
        self.fn = fn
        self._output_type = fn.output_type_for(upstream.output_type)

    def _read_param(self, ctx: ExecutionContext) -> tuple:
        params = self.upstreams[1].drain(ctx)
        if len(params) != 1:
            raise ExecutionError(
                f"ParametrizedMap parameter upstream produced {len(params)} tuples, "
                "expected exactly 1"
            )
        return params.row(0)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        param = self._read_param(ctx)
        fn = self.fn
        count = 0
        try:
            for row in self.upstreams[0].rows(ctx):
                count += 1
                yield fn(param, row)
        finally:
            ctx.charge_cpu(self, "map", count)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        param = self._read_param(ctx)
        for batch in self.upstreams[0].stream_batches(ctx):
            ctx.charge_cpu(self, "map", len(batch))
            yield self.fn.apply_batch(param, batch, self.output_type)
