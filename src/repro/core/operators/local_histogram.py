"""LocalHistogram: bucket counts of a stream (§3.3.2).

The first phase of every partitioned algorithm in the paper: count how many
tuples fall into each of ``n`` buckets so that the partitioning operators
can compute exact offsets and write without synchronization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.functions import PartitionFunction
from repro.core.operator import Operator
from repro.errors import ExecutionError
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["HISTOGRAM_TYPE", "LocalHistogram", "read_histogram"]

#: ⟨bucketID, count⟩ — the type both histogram operators produce.
HISTOGRAM_TYPE = TupleType.of(bucket=INT64, count=INT64)


def read_histogram(
    ctx: ExecutionContext, upstream: Operator, n_partitions: int
) -> np.ndarray:
    """Drain a ⟨bucket, count⟩ upstream into a dense per-partition array.

    The one consumer-side histogram reader, shared by ``LocalPartitioning``
    and ``MpiExchange``: empty batches are skipped *before* the bucket
    range is validated, so a histogram delivered as (or padded with) empty
    morsels never trips ``min()`` on an empty column.
    """
    counts = np.zeros(n_partitions, dtype=np.int64)
    for batch in upstream.stream_batches(ctx):
        if len(batch) == 0:
            continue
        buckets = batch.column("bucket")
        if not (0 <= int(buckets.min()) and int(buckets.max()) < n_partitions):
            raise ExecutionError(f"histogram bucket outside [0, {n_partitions})")
        np.add.at(counts, buckets, batch.column("count"))
    return counts


class LocalHistogram(Operator):
    """Count upstream tuples per bucket; yields one ⟨bucketID, count⟩ per bucket.

    The bucket function must return integers in ``[0, n_buckets)``; every
    bucket id is emitted (with count 0 if empty) in increasing order, which
    is what lets downstream operators rely on dense, ordered histograms.
    """

    abbreviation = "LH"
    phase_name = "local_histogram"

    def __init__(self, upstream: Operator, bucket_fn: PartitionFunction) -> None:
        super().__init__(upstreams=(upstream,))
        self.bucket_fn = bucket_fn
        if hasattr(bucket_fn, "bind"):
            bucket_fn.bind(upstream.output_type)
        self._output_type = HISTOGRAM_TYPE

    @property
    def n_buckets(self) -> int:
        return self.bucket_fn.n_partitions

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        counts = [0] * self.n_buckets
        bucket_fn = self.bucket_fn
        total = 0
        for row in self.upstreams[0].rows(ctx):
            total += 1
            counts[bucket_fn(row)] += 1
        ctx.charge_cpu(self, "histogram", total)
        for bucket, count in enumerate(counts):
            yield (bucket, count)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        counts = np.zeros(self.n_buckets, dtype=np.int64)
        total = 0
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) == 0:
                continue
            total += len(batch)
            buckets = self.bucket_fn.map_batch(batch)
            counts += np.bincount(buckets, minlength=self.n_buckets)
        ctx.charge_cpu(self, "histogram", total)
        yield RowVector(
            HISTOGRAM_TYPE, [np.arange(self.n_buckets, dtype=np.int64), counts]
        )
