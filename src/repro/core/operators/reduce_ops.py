"""Reduce and ReduceByKey: associative aggregation (§3.3.2)."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.functions import ReduceFunction
from repro.core.operator import Operator, require_fields
from repro.errors import TypeCheckError
from repro.types.collections import RowVector, RowVectorBuilder

__all__ = ["Reduce", "ReduceByKey"]


class Reduce(Operator):
    """Fold all upstream tuples into a single tuple with ``fn``.

    ``fn`` must be associative and commutative; its two arguments and its
    result all have the upstream's tuple type, which is also the operator's
    output type.  An empty upstream yields no output tuple.
    """

    abbreviation = "RD"
    phase_name = "aggregation"

    def __init__(self, upstream: Operator, fn: ReduceFunction) -> None:
        super().__init__(upstreams=(upstream,))
        self.fn = fn
        self._output_type = upstream.output_type

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        acc: tuple | None = None
        count = 0
        for row in self.upstreams[0].rows(ctx):
            count += 1
            acc = row if acc is None else self.fn(acc, row)
        ctx.charge_cpu(self, "reduce", count)
        if acc is not None:
            yield acc

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        sum_fields = self.fn.vectorized_sum_fields
        if sum_fields is None or set(sum_fields) != set(self.output_type.field_names):
            yield from self._rows_as_morsels(ctx)
            return
        totals: list | None = None
        for batch in self.upstreams[0].stream_batches(ctx):
            ctx.charge_cpu(self, "reduce", len(batch))
            if len(batch) == 0:
                continue
            partial = [col.sum() for col in batch.columns]
            totals = partial if totals is None else [a + b for a, b in zip(totals, partial)]
        builder = RowVectorBuilder(self.output_type)
        if totals is not None:
            builder.append(tuple(np.asarray(t).item() for t in totals))
        yield builder.finish()


class ReduceByKey(Operator):
    """Combine all tuples sharing a key value into one tuple (§3.3.2).

    The key field is stripped from the tuples handed to ``fn`` and re-added
    to the aggregated result, so the output tuple type equals the input's.
    Both data paths are deterministic: the scalar fold emits groups in
    first-seen key order, the vectorized sum kernel in ascending key order.
    """

    abbreviation = "RK"
    phase_name = "aggregation"

    def __init__(
        self, upstream: Operator, key_fields: Sequence[str] | str, fn: ReduceFunction
    ) -> None:
        super().__init__(upstreams=(upstream,))
        if isinstance(key_fields, str):
            key_fields = (key_fields,)
        if not key_fields:
            raise TypeCheckError("ReduceByKey needs at least one key field")
        require_fields("ReduceByKey", upstream.output_type, key_fields)
        self.key_fields = tuple(key_fields)
        self.fn = fn
        in_type = upstream.output_type
        self._key_positions = tuple(in_type.position(f) for f in self.key_fields)
        self._value_positions = tuple(
            i for i in range(len(in_type)) if i not in self._key_positions
        )
        if not self._value_positions:
            raise TypeCheckError(
                "ReduceByKey needs at least one non-key field to aggregate"
            )
        self._output_type = in_type

    def _emit(self, groups: dict) -> Iterator[tuple]:
        out_len = len(self.output_type)
        for key, values in groups.items():
            row: list = [None] * out_len
            for pos, val in zip(self._key_positions, key):
                row[pos] = val
            for pos, val in zip(self._value_positions, values):
                row[pos] = val
            yield tuple(row)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        key_pos, val_pos, fn = self._key_positions, self._value_positions, self.fn
        groups: dict[tuple, tuple] = {}
        count = 0
        for row in self.upstreams[0].rows(ctx):
            count += 1
            key = tuple(row[p] for p in key_pos)
            values = tuple(row[p] for p in val_pos)
            acc = groups.get(key)
            groups[key] = values if acc is None else fn(acc, values)
        ctx.charge_cpu(self, "reduce", count)
        yield from self._emit(groups)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        value_names = {
            self.output_type.field_names[p] for p in self._value_positions
        }
        vectorizable = (
            self.fn.vectorized_sum_fields is not None
            and set(self.fn.vectorized_sum_fields) == value_names
            and len(self._key_positions) == 1
        )
        if not vectorizable:
            yield from self._rows_as_morsels(ctx)
            return
        yield from self._sum_by_single_key(ctx)

    def _sum_by_single_key(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        """Vectorized single-key sum aggregation via sort + reduceat."""
        key_pos = self._key_positions[0]
        key_chunks: list[np.ndarray] = []
        value_chunks: list[list[np.ndarray]] = [[] for _ in self._value_positions]
        total = 0
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) == 0:
                continue
            total += len(batch)
            key_chunks.append(batch.columns[key_pos])
            for store, pos in zip(value_chunks, self._value_positions):
                store.append(batch.columns[pos])
        ctx.charge_cpu(self, "reduce", total)
        if not key_chunks:
            yield RowVector.empty(self.output_type)
            return
        keys = np.concatenate(key_chunks)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        out_columns: list[np.ndarray | None] = [None] * len(self.output_type)
        out_columns[key_pos] = sorted_keys[boundaries]
        for store, pos in zip(value_chunks, self._value_positions):
            values = np.concatenate(store)[order]
            out_columns[pos] = np.add.reduceat(values, boundaries)
        yield RowVector(self.output_type, out_columns)
