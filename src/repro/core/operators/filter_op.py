"""Filter: relational selection over a predicate (§3.3.2)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.functions import Predicate
from repro.core.operator import Operator
from repro.types.collections import RowVector

__all__ = ["Filter"]


class Filter(Operator):
    """Return upstream tuples satisfying the predicate, unmodified."""

    abbreviation = "FI"

    def __init__(self, upstream: Operator, predicate: Predicate) -> None:
        super().__init__(upstreams=(upstream,))
        self.predicate = predicate
        self._output_type = upstream.output_type

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        predicate = self.predicate
        count = 0
        # Charge in a finally so early generator close (e.g. a downstream
        # Limit) still bills the tuples that were actually inspected.
        try:
            for row in self.upstreams[0].rows(ctx):
                count += 1
                if predicate(row):
                    yield row
        finally:
            ctx.charge_cpu(self, "map", count)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        for batch in self.upstreams[0].stream_batches(ctx):
            ctx.charge_cpu(self, "map", len(batch))
            mask = self.predicate.mask(batch)
            if mask.all():
                yield batch
            else:
                yield batch.take(np.flatnonzero(mask))
