"""MpiBroadcast: replicate all tuples on every rank (§3.3.3).

Very similar to ``MpiExchange`` — it also consumes a local and a global
histogram from dedicated upstreams to compute exclusive offsets into a
shared RMA window and uses synchronization-free one-sided writes — but it
sends all tuples from the main upstream to *all* ranks and returns them
directly, without partition IDs.  This is the building block for broadcast
joins of small relations.

The histograms use a single bucket (bucket 0): the only quantity needed is
how many tuples each rank contributes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.local_histogram import HISTOGRAM_TYPE
from repro.core.operators.mpi_exchange import BUFFER_ROWS
from repro.errors import ExecutionError, TypeCheckError
from repro.types.collections import RowVector

__all__ = ["MpiBroadcast"]


class MpiBroadcast(Operator):
    """Send every upstream tuple to every rank; return the union stream."""

    abbreviation = "MB"
    phase_name = "network_partition"

    def __init__(
        self,
        data: Operator,
        local_histogram: Operator,
        global_histogram: Operator,
    ) -> None:
        super().__init__(upstreams=(data, local_histogram, global_histogram))
        for side, name in ((local_histogram, "local"), (global_histogram, "global")):
            if side.output_type != HISTOGRAM_TYPE:
                raise TypeCheckError(
                    f"MpiBroadcast {name} histogram upstream must produce "
                    f"{HISTOGRAM_TYPE!r}, got {side.output_type!r}"
                )
        self._output_type = data.output_type

    def _read_total(self, ctx: ExecutionContext, upstream: Operator) -> int:
        total = 0
        for batch in upstream.stream_batches(ctx):
            if len(batch):
                total += int(batch.column("count").sum())
        return total

    def batches(self, ctx: ExecutionContext) -> Iterator[RowVector]:
        ctx.set_phase(self.assigned_phase)
        comm = ctx.comm
        local_total = self._read_total(ctx, self.upstreams[1])
        global_total = self._read_total(ctx, self.upstreams[2])

        ctx.set_phase(self.assigned_phase)
        per_rank = np.asarray(
            comm.allgather(local_total, payload_bytes=8), dtype=np.int64
        )
        if int(per_rank.sum()) != global_total:
            raise ExecutionError(
                "global histogram disagrees with the sum of local histograms"
            )
        my_offset = int(per_rank[: comm.rank].sum())

        windows = comm.win_create(self.output_type, global_total)
        sent = 0
        metrics = ctx.metrics
        for batch in self.upstreams[0].stream_batches(ctx):
            if len(batch) == 0:
                continue
            ctx.charge_cpu(self, "partition", len(batch))
            if metrics is not None:
                # Replication volume: every batch goes to every rank.
                metrics.counter("broadcast_rows", op=type(self).__name__).add(
                    len(batch) * comm.n_ranks
                )
                metrics.counter("broadcast_bytes", op=type(self).__name__).add(
                    batch.size_bytes() * comm.n_ranks
                )
            ctx.set_phase(self.assigned_phase)
            for start in range(0, len(batch), BUFFER_ROWS):
                chunk = batch.slice(start, min(start + BUFFER_ROWS, len(batch)))
                for target in range(comm.n_ranks):
                    windows.put(target, my_offset + sent + start, chunk)
            sent += len(batch)
        if sent != local_total:
            raise ExecutionError(
                f"data upstream produced {sent} tuples but the local histogram "
                f"promised {local_total}"
            )

        ctx.set_phase(self.assigned_phase)
        windows.fence()
        yield windows.local.read(0, global_total)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for batch in self.batches(ctx):
            yield from batch.iter_rows()
