"""MpiExecutor: run a nested plan data-parallel on an MPI cluster (§3.3.3).

The driver-side operator that owns all knowledge of the distributed
platform's *launch* mechanics (the paper's ``mpirun`` + worker executables
loading the JiT-compiled nested plan).  Semantics match ``NestedMap`` —
one nested-plan invocation per input tuple, one output tuple each — except
that invocations are guaranteed to run concurrently on different ranks.

The reproduction dispatches onto a :class:`~repro.mpi.cluster.SimCluster`:
one thread per rank, each executing the same nested plan on its input
tuple; results are collected in rank order.  The driver's clock advances by
the job's makespan (the slowest rank), and the per-rank phase breakdowns
are kept for the benchmark harness.

This operator is also the seat of *pipeline-level recovery* under fault
injection: a dispatch wave is the recovery unit, re-executed from its
checkpoints when a crash or an exhausted retry budget aborts it.  The
escalation ladder itself lives in :mod:`repro.faults.stage_recovery`;
this operator only provides the seam (``recovery_log``, the wave loop).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.parameter_lookup import ParameterSlot
from repro.errors import ExecutionError, TypeCheckError
from repro.mpi.cluster import ClusterResult, SimCluster
from repro.mpi.trace import TraceEvent

__all__ = ["MpiExecutor"]


class MpiExecutor(Operator):
    """Execute a nested plan once per input tuple, one rank per tuple.

    Args:
        upstream: Driver-side producer of the input tuples.  It must yield
            either exactly one tuple (replicated to every rank — the common
            case where each worker derives its share from its rank id) or
            exactly ``cluster.n_ranks`` tuples (one per rank).
        build_inner: Callback building the nested plan from a
            :class:`ParameterSlot`, as for ``NestedMap``.
        cluster: The simulated MPI cluster to dispatch onto.
    """

    abbreviation = "ME"
    phase_name = "mpi_executor"

    def __init__(
        self,
        upstream: Operator,
        build_inner: Callable[[ParameterSlot], Operator],
        cluster: SimCluster,
    ) -> None:
        super().__init__(upstreams=(upstream,))
        self.cluster = cluster
        self.slot = ParameterSlot(upstream.output_type)
        inner = build_inner(self.slot)
        if not isinstance(inner, Operator):
            raise TypeCheckError(
                f"MpiExecutor: build_inner must return an Operator for the "
                f"parameter type {self.slot.param_type!r}, got "
                f"{type(inner).__name__}"
            )
        self.inner = inner
        self._output_type = inner.output_type
        #: ClusterResult of the most recent execution (for benchmarking).
        self.last_result: ClusterResult | None = None
        #: Fault/retry evidence of aborted attempts plus driver ``recovery``
        #: events, from the most recent execution; harvested into
        #: ``ExecutionReport.recovery_events``.
        self.recovery_log: list[TraceEvent] = []

    def nested_roots(self) -> tuple[Operator, ...]:
        return (self.inner,)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        inputs = list(self.upstreams[0].stream(ctx))
        n_ranks = self.cluster.n_ranks
        replicated = len(inputs) == 1
        if replicated:
            inputs = inputs * n_ranks
        if len(inputs) % n_ranks:
            raise ExecutionError(
                f"MpiExecutor got {len(inputs)} input tuples for {n_ranks} ranks; "
                "expected 1 (replicated) or a multiple of the rank count"
            )
        if ctx.rank_ctx is not None:
            raise ExecutionError("MpiExecutor cannot run inside another MPI job")
        self.recovery_log = []

        # More inputs than ranks run as successive waves of one job each —
        # the guarantee the paper states is only that instances *within* a
        # dispatch run concurrently on different ranks.
        for wave_start in range(0, len(inputs), n_ranks):
            wave = inputs[wave_start : wave_start + n_ranks]
            result = self._run_wave(ctx, wave, replicated)
            self.last_result = result
            # The driver waits for each data-parallel wave.
            ctx.set_phase(self.assigned_phase)
            ctx.clock.advance(result.makespan)
            for rank_output in result.per_rank:
                yield from rank_output

    def _run_wave(
        self, ctx: ExecutionContext, wave: list[tuple], replicated: bool
    ) -> ClusterResult:
        # Lazy: keeps repro.core free of an import-time repro.faults edge.
        from repro.faults.stage_recovery import run_wave

        return run_wave(self, ctx, wave, replicated)

    batches = Operator.batches
