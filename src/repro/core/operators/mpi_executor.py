"""MpiExecutor: run a nested plan data-parallel on an MPI cluster (§3.3.3).

The driver-side operator that owns all knowledge of the distributed
platform's *launch* mechanics (the paper's ``mpirun`` + worker executables
loading the JiT-compiled nested plan).  Semantics match ``NestedMap`` —
one nested-plan invocation per input tuple, one output tuple each — except
that invocations are guaranteed to run concurrently on different ranks.

The reproduction dispatches onto a :class:`~repro.mpi.cluster.SimCluster`:
one thread per rank, each executing the same nested plan on its input
tuple; results are collected in rank order.  The driver's clock advances by
the job's makespan (the slowest rank), and the per-rank phase breakdowns
are kept for the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.context import ExecutionContext
from repro.core.operator import Operator
from repro.core.operators.parameter_lookup import ParameterSlot
from repro.errors import ExecutionError, TypeCheckError
from repro.mpi.cluster import ClusterResult, RankContext, SimCluster

__all__ = ["MpiExecutor"]


class MpiExecutor(Operator):
    """Execute a nested plan once per input tuple, one rank per tuple.

    Args:
        upstream: Driver-side producer of the input tuples.  It must yield
            either exactly one tuple (replicated to every rank — the common
            case where each worker derives its share from its rank id) or
            exactly ``cluster.n_ranks`` tuples (one per rank).
        build_inner: Callback building the nested plan from a
            :class:`ParameterSlot`, as for ``NestedMap``.
        cluster: The simulated MPI cluster to dispatch onto.
    """

    abbreviation = "ME"
    phase_name = "mpi_executor"

    def __init__(
        self,
        upstream: Operator,
        build_inner: Callable[[ParameterSlot], Operator],
        cluster: SimCluster,
    ) -> None:
        super().__init__(upstreams=(upstream,))
        self.cluster = cluster
        self.slot = ParameterSlot(upstream.output_type)
        inner = build_inner(self.slot)
        if not isinstance(inner, Operator):
            raise TypeCheckError(
                f"MpiExecutor: build_inner must return an Operator for the "
                f"parameter type {self.slot.param_type!r}, got "
                f"{type(inner).__name__}"
            )
        self.inner = inner
        self._output_type = inner.output_type
        #: ClusterResult of the most recent execution (for benchmarking).
        self.last_result: ClusterResult | None = None

    def nested_roots(self) -> tuple[Operator, ...]:
        return (self.inner,)

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        inputs = list(self.upstreams[0].stream(ctx))
        n_ranks = self.cluster.n_ranks
        if len(inputs) == 1:
            inputs = inputs * n_ranks
        if len(inputs) % n_ranks:
            raise ExecutionError(
                f"MpiExecutor got {len(inputs)} input tuples for {n_ranks} ranks; "
                "expected 1 (replicated) or a multiple of the rank count"
            )
        if ctx.rank_ctx is not None:
            raise ExecutionError("MpiExecutor cannot run inside another MPI job")
        mode = ctx.mode
        morsel_rows = ctx.morsel_rows
        profiler = ctx.profiler

        # More inputs than ranks run as successive waves of one job each —
        # the guarantee the paper states is only that instances *within* a
        # dispatch run concurrently on different ranks.
        for wave_start in range(0, len(inputs), n_ranks):
            wave = inputs[wave_start : wave_start + n_ranks]
            # One child profiler per rank (each bound to the rank's own
            # clock and thread); merged into the driver's profiler below.
            rank_profilers: list = [None] * n_ranks

            def worker(rank_ctx: RankContext) -> list[tuple]:
                rank_profiler = None
                if profiler is not None:
                    rank_profiler = profiler.child(rank_ctx.clock, rank_ctx.rank)
                    rank_profilers[rank_ctx.rank] = rank_profiler
                worker_ctx = ExecutionContext.for_rank(
                    rank_ctx, mode=mode, morsel_rows=morsel_rows,
                    profiler=rank_profiler,
                )
                worker_ctx.push_parameter(self.slot.id, wave[rank_ctx.rank])
                try:
                    return list(self.inner.stream(worker_ctx))
                finally:
                    worker_ctx.pop_parameter(self.slot.id)

            result = self.cluster.run(worker)
            self.last_result = result
            if profiler is not None:
                for rank_profiler in rank_profilers:
                    profiler.absorb(rank_profiler)
            # The driver waits for each data-parallel wave.
            ctx.set_phase(self.assigned_phase)
            ctx.clock.advance(result.makespan)
            for rank_output in result.per_rank:
                yield from rank_output

    batches = Operator.batches
