"""Synthetic GROUP BY workloads (paper §5.1.3).

Figure 7 uses 16-byte ⟨key, value⟩ tuples: a fixed total of 2048 million
tuples where, on the left plot, every key occurs once, and on the right
plot the *cardinality* of each key (duplicates per key) grows while the
total tuple count stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModularisError
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["GroupByWorkload", "make_groupby_table"]

KV_TYPE = TupleType.of(key=INT64, value=INT64)


@dataclass(frozen=True)
class GroupByWorkload:
    """A ⟨key, value⟩ table plus the exact expected aggregation."""

    table: RowVector
    key_bits: int
    n_groups: int
    duplicates_per_key: int

    def expected_sums(self) -> dict[int, int]:
        """Reference result: per-key sum of values."""
        keys = self.table.column("key")
        values = self.table.column("value")
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        sums = np.add.reduceat(values[order], bounds)
        return dict(zip(sorted_keys[bounds].tolist(), sums.tolist()))


def make_groupby_table(
    n_tuples: int, duplicates_per_key: int = 1, seed: int = 2021
) -> GroupByWorkload:
    """Fixed total size, variable key cardinality (Figure 7's two knobs).

    Args:
        n_tuples: Total tuples in the table (the paper's fixed 2048 M).
        duplicates_per_key: Occurrences of each key; the number of groups is
            ``n_tuples // duplicates_per_key``.
        seed: RNG seed.
    """
    if n_tuples < 1 or duplicates_per_key < 1:
        raise ModularisError("n_tuples and duplicates_per_key must be positive")
    if n_tuples % duplicates_per_key:
        raise ModularisError(
            f"{duplicates_per_key} duplicates per key must divide the total "
            f"of {n_tuples} tuples"
        )
    n_groups = n_tuples // duplicates_per_key
    rng = np.random.default_rng(seed)
    keys = np.repeat(np.arange(n_groups, dtype=np.int64), duplicates_per_key)
    rng.shuffle(keys)
    values = rng.integers(0, n_groups or 1, size=n_tuples, dtype=np.int64)
    key_bits = max(int(max(n_groups, 2)).bit_length(), 4)
    return GroupByWorkload(
        table=RowVector(KV_TYPE, [keys, values]),
        key_bits=key_bits,
        n_groups=n_groups,
        duplicates_per_key=duplicates_per_key,
    )
