"""Synthetic workload generators matching the paper's evaluation setup."""

from repro.workloads.groupby_data import KV_TYPE, GroupByWorkload, make_groupby_table
from repro.workloads.join_data import (
    JoinWorkload,
    make_cascade_relations,
    make_join_relations,
)

__all__ = [
    "KV_TYPE",
    "GroupByWorkload",
    "make_groupby_table",
    "JoinWorkload",
    "make_cascade_relations",
    "make_join_relations",
]
