"""Synthetic join workloads matching the paper's evaluation setup.

The paper's join experiments (§5.1.2, §5.2.1) use relations of 16-byte
tuples — an 8-byte key and an 8-byte payload — with keys from a dense
domain and a 1-on-1 correspondence between the keys of the inner and outer
relation.  These generators reproduce that workload at configurable scale,
plus the duplicated-key variant used to grow the first join's output in
Figure 8b/8c.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModularisError
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["JoinWorkload", "make_join_relations", "make_cascade_relations"]


def _relation(
    rng: np.random.Generator, n_tuples: int, payload_name: str, copies: int = 1
) -> RowVector:
    """A shuffled dense-key relation; each key appears ``copies`` times."""
    keys = np.repeat(np.arange(n_tuples, dtype=np.int64), copies)
    rng.shuffle(keys)
    payloads = keys + 1  # payloads are dense too (dictionary-encoded domain)
    schema = TupleType.of(key=INT64, **{payload_name: INT64})
    return RowVector(schema, [keys, payloads])


@dataclass(frozen=True)
class JoinWorkload:
    """A two-relation join workload plus its compression parameters."""

    left: RowVector
    right: RowVector
    #: Dense-domain width covering every key and payload value.
    key_bits: int
    #: Exact number of result tuples the join must produce.
    expected_matches: int


def make_join_relations(
    n_tuples: int, seed: int = 2021, right_copies: int = 1
) -> JoinWorkload:
    """The paper's scale-out workload: |R| = |S| = ``n_tuples`` dense keys.

    Args:
        n_tuples: Distinct keys per relation (the paper uses 2048 million;
            benchmarks here default to 2**19).
        seed: RNG seed; workloads are fully deterministic.
        right_copies: Duplicates of each key in the outer relation; 1 keeps
            the paper's default 1-on-1 correspondence, larger values grow
            the join output (Figure 8b/8c).
    """
    if n_tuples < 1:
        raise ModularisError(f"need at least one tuple, got {n_tuples}")
    rng = np.random.default_rng(seed)
    left = _relation(rng, n_tuples, "lpay")
    right = _relation(rng, n_tuples, "rpay", copies=right_copies)
    key_bits = max(int(n_tuples + 1).bit_length(), 4)
    return JoinWorkload(
        left=left,
        right=right,
        key_bits=key_bits,
        expected_matches=n_tuples * right_copies,
    )


def make_cascade_relations(
    n_relations: int,
    n_tuples: int,
    seed: int = 2021,
    match_multiplier: int = 1,
) -> tuple[list[RowVector], int]:
    """Relations ``R0 … R(n-1)`` for an (n−1)-join cascade on ``key``.

    Args:
        n_relations: Number of relations (≥ 3 for a sequence of ≥ 2 joins).
        n_tuples: Tuples per relation (all relations stay this size).
        seed: RNG seed.
        match_multiplier: ``m`` > 1 shrinks the key domain of the first two
            relations to ``n_tuples / m`` keys repeated ``m`` times each, so
            the *first join's output* grows to ``m × n_tuples`` while every
            input relation keeps ``n_tuples`` rows — the knob of Figure
            8b/8c (the paper grows the intermediate result, not the
            inputs; the optimized variant's network time must stay flat).

    Returns:
        The relations and the expected final match count.
    """
    if n_relations < 3:
        raise ModularisError("a cascade workload needs at least three relations")
    if match_multiplier < 1 or n_tuples % match_multiplier:
        raise ModularisError(
            f"match multiplier {match_multiplier} must divide n_tuples={n_tuples}"
        )
    rng = np.random.default_rng(seed)
    relations = []
    for i in range(n_relations):
        if i < 2 and match_multiplier > 1:
            n_keys = n_tuples // match_multiplier
            keys = np.repeat(np.arange(n_keys, dtype=np.int64), match_multiplier)
            rng.shuffle(keys)
            schema = TupleType.of(key=INT64, **{f"p{i}": INT64})
            relations.append(RowVector(schema, [keys, keys + 1]))
        else:
            relations.append(_relation(rng, n_tuples, f"p{i}"))
    # R0 ⋈ R1 yields m² combinations per key over n/m keys = m·n rows; every
    # later relation holds each surviving key exactly once.
    return relations, n_tuples * match_multiplier
