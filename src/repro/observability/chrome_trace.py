"""Export operator spans and substrate trace events as a Chrome trace.

The JSON produced here loads in ``chrome://tracing`` or
https://ui.perfetto.dev and shows one *process* per participant — the
driver plus every simulated rank — with the substrate events (collectives,
one-sided puts, window registrations) on track 0 and one track per
operator, all on the shared simulated-time axis (microseconds).

Both inputs share the :class:`~repro.observability.events.SimEvent` base,
so the exporter is a single loop over heterogeneous events::

    report = execute(plan, profile=True)
    write_chrome_trace("trace.json", profile=report.profile,
                       traces=report.traces)
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.observability.events import DRIVER_RANK, SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.trace import ClusterTrace
    from repro.observability.profile import PlanProfile

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: Track id of the substrate (communication) events within each process.
_SUBSTRATE_TID = 0


def _pid(rank: int) -> int:
    """Chrome process id for a rank (driver first, then rank order)."""
    return 1 if rank == DRIVER_RANK else rank + 2


def _process_name(rank: int) -> str:
    return "driver" if rank == DRIVER_RANK else f"rank {rank}"


def chrome_trace_events(
    profile: "PlanProfile | None" = None,
    traces: Sequence["ClusterTrace"] = (),
    time_scale: float = 1e6,
    extra_events: Iterable[SimEvent] = (),
) -> list[dict]:
    """Build the ``traceEvents`` list from a profile and/or cluster traces.

    Args:
        profile: Operator spans from a profiled execution (optional).
        traces: Any number of :class:`ClusterTrace` instances whose
            collective/put/window events join the same timeline.
        time_scale: Simulated seconds → trace timestamp units (µs).
        extra_events: Loose events joining the same timeline — e.g. an
            ``ExecutionReport``'s driver-side ``recovery_events``, which
            carry the fault/retry story of aborted (hence untraced) stage
            attempts.
    """
    events: list[SimEvent] = []
    if profile is not None:
        events.extend(profile.spans)
    for trace in traces:
        events.extend(trace.events())
    events.extend(extra_events)

    metadata: list[dict] = []
    #: Processes already described with process_name/substrate metadata.
    known_pids: set[int] = set()
    #: Operator node id -> track id (1.. in first-seen order, shared
    #: across processes so the same operator aligns on every rank).
    op_tids: dict[int, int] = {}
    #: (pid, tid) operator tracks already named.
    named_tracks: set[tuple[int, int]] = set()

    def describe_process(rank: int) -> int:
        pid = _pid(rank)
        if pid not in known_pids:
            known_pids.add(pid)
            metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                             "args": {"name": _process_name(rank)}})
            metadata.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                             "args": {"sort_index": pid}})
            metadata.append({"ph": "M", "name": "thread_name", "pid": pid,
                             "tid": _SUBSTRATE_TID, "args": {"name": "substrate"}})
        return pid

    spans: list[dict] = []
    for event in events:
        pid = describe_process(event.rank)
        if event.kind == "operator":
            tid = op_tids.setdefault(getattr(event, "node_id", 0), len(op_tids) + 1)
            if (pid, tid) not in named_tracks:
                named_tracks.add((pid, tid))
                metadata.append(
                    {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": getattr(event, "op_type", event.label)}}
                )
            name = event.label
            cat = "operator"
        else:
            tid = _SUBSTRATE_TID
            name = f"{event.kind}:{event.label}"
            cat = "substrate"
        spans.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": event.start * time_scale,
                "dur": max(0.0, event.duration) * time_scale,
                "pid": pid,
                "tid": tid,
                "args": event.chrome_args(),
            }
        )
    return metadata + spans


def write_chrome_trace(
    path: str,
    profile: "PlanProfile | None" = None,
    traces: Iterable["ClusterTrace"] = (),
    extra_events: Iterable[SimEvent] = (),
) -> int:
    """Write the merged trace JSON to ``path``; returns the event count."""
    events = chrome_trace_events(
        profile=profile, traces=list(traces), extra_events=extra_events
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        handle.write("\n")
    return len(events)
