"""Export operator spans and substrate trace events as a Chrome trace.

The JSON produced here loads in ``chrome://tracing`` or
https://ui.perfetto.dev and shows one *process* per participant — the
driver plus every simulated rank — with the substrate events (collectives,
one-sided puts, window registrations) on track 0 and one track per
operator, all on the shared simulated-time axis (microseconds).

Both inputs share the :class:`~repro.observability.events.SimEvent` base,
so the exporter is a single loop over heterogeneous events::

    report = execute(plan, profile=True)
    write_chrome_trace("trace.json", profile=report.profile,
                       traces=report.traces)
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.observability.events import DRIVER_RANK, SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import ExecutionReport
    from repro.mpi.trace import ClusterTrace
    from repro.observability.profile import PlanProfile
    from repro.observability.tracing import QueryJournal
    from repro.serving.scheduler import SchedulerEvent

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "serving_trace_events",
    "write_serving_chrome_trace",
]

#: Track id of the substrate (communication) events within each process.
_SUBSTRATE_TID = 0


def _pid(rank: int) -> int:
    """Chrome process id for a rank (driver first, then rank order)."""
    return 1 if rank == DRIVER_RANK else rank + 2


def _process_name(rank: int) -> str:
    return "driver" if rank == DRIVER_RANK else f"rank {rank}"


def chrome_trace_events(
    profile: "PlanProfile | None" = None,
    traces: Sequence["ClusterTrace"] = (),
    time_scale: float = 1e6,
    extra_events: Iterable[SimEvent] = (),
) -> list[dict]:
    """Build the ``traceEvents`` list from a profile and/or cluster traces.

    Args:
        profile: Operator spans from a profiled execution (optional).
        traces: Any number of :class:`ClusterTrace` instances whose
            collective/put/window events join the same timeline.
        time_scale: Simulated seconds → trace timestamp units (µs).
        extra_events: Loose events joining the same timeline — e.g. an
            ``ExecutionReport``'s driver-side ``recovery_events``, which
            carry the fault/retry story of aborted (hence untraced) stage
            attempts.
    """
    events: list[SimEvent] = []
    if profile is not None:
        events.extend(profile.spans)
    for trace in traces:
        events.extend(trace.events())
    events.extend(extra_events)

    metadata: list[dict] = []
    if profile is not None and getattr(profile, "dropped_spans", 0):
        # The profiler hit its span cap: make the truncation visible in
        # the trace itself, not just in EXPLAIN ANALYZE.
        metadata.append(
            {"ph": "M", "name": "dropped_spans", "pid": 0,
             "args": {"dropped_spans": profile.dropped_spans}}
        )
    #: Processes already described with process_name/substrate metadata.
    known_pids: set[int] = set()
    #: Operator node id -> track id (1.. in first-seen order, shared
    #: across processes so the same operator aligns on every rank).
    op_tids: dict[int, int] = {}
    #: (pid, tid) operator tracks already named.
    named_tracks: set[tuple[int, int]] = set()

    def describe_process(rank: int) -> int:
        pid = _pid(rank)
        if pid not in known_pids:
            known_pids.add(pid)
            metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                             "args": {"name": _process_name(rank)}})
            metadata.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                             "args": {"sort_index": pid}})
            metadata.append({"ph": "M", "name": "thread_name", "pid": pid,
                             "tid": _SUBSTRATE_TID, "args": {"name": "substrate"}})
        return pid

    spans: list[dict] = []
    for event in events:
        pid = describe_process(event.rank)
        if event.kind == "operator":
            tid = op_tids.setdefault(getattr(event, "node_id", 0), len(op_tids) + 1)
            if (pid, tid) not in named_tracks:
                named_tracks.add((pid, tid))
                metadata.append(
                    {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": getattr(event, "op_type", event.label)}}
                )
            name = event.label
            cat = "operator"
        else:
            tid = _SUBSTRATE_TID
            name = f"{event.kind}:{event.label}"
            cat = "substrate"
        args = event.chrome_args()
        if event.trace_id:
            args = {**args, "trace_id": event.trace_id, "span_id": event.span_id,
                    "parent_span_id": event.parent_span_id}
        spans.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": event.start * time_scale,
                "dur": max(0.0, event.duration) * time_scale,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return metadata + spans


def write_chrome_trace(
    path: str,
    profile: "PlanProfile | None" = None,
    traces: Iterable["ClusterTrace"] = (),
    extra_events: Iterable[SimEvent] = (),
) -> int:
    """Write the merged trace JSON to ``path``; returns the event count."""
    events = chrome_trace_events(
        profile=profile, traces=list(traces), extra_events=extra_events
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        handle.write("\n")
    return len(events)


# -- multi-query serving export ----------------------------------------------

#: Per-query process track layout (see :func:`serving_trace_events`).
_LIFECYCLE_TID = 0
_QUERY_SUBSTRATE_TID_BASE = 10
_QUERY_OPERATOR_TID_BASE = 100


def serving_trace_events(
    queries: Sequence[tuple["QueryJournal", "ExecutionReport | None"]],
    scheduler_events: Sequence["SchedulerEvent"] = (),
    lifecycle_events: Sequence[SimEvent] = (),
    time_scale: float = 1e6,
    pid_base: int = 0,
    label_prefix: str = "",
) -> list[dict]:
    """One merged Chrome trace for a whole serving run.

    Lanes (Chrome *processes*), offset by ``pid_base`` so several runs
    (e.g. the profiles of a chaos matrix) can merge into one file:

    * ``pid_base + 1`` — scheduler workers: one thread per worker, one
      box per quantum on the *global step-sequence* axis.  Overlapping
      boxes of different queries are the interleaving proof, visually.
    * ``pid_base + 2`` — tenants: one thread per tenant, one box per
      admitted query spanning ``[first_seq, last_seq]`` (instants for
      shed/rejected submissions that never ran).
    * ``pid_base + 3`` — server transitions that belong to no single
      query (circuit-breaker state changes).
    * ``pid_base + 10 + i`` — one process per submission ``i``, on the
      *simulated-time* axis (µs): journal lifecycle instants on thread
      0, per-rank substrate events on threads 10+, operator spans on
      threads 100+.

    Every event's ``args`` carry its causal ``trace_id``/``span_id``, so
    clicking any box answers "which query was this?".

    Args:
        queries: ``(journal, report-or-None)`` per submission, in
            submission order; failed/shed submissions pass ``None``.
        scheduler_events: The scheduler's quantum trace.
        lifecycle_events: The server's lifecycle transitions; entries
            without a trace id land in the server lane.
        time_scale: Simulated seconds → µs for the per-query processes.
        pid_base: Offset for every process id this call emits.
        label_prefix: Prefix for process names (e.g. a matrix profile).
    """
    prefix = f"{label_prefix}: " if label_prefix else ""
    metadata: list[dict] = []
    spans: list[dict] = []
    worker_pid = pid_base + 1
    tenant_pid = pid_base + 2
    server_pid = pid_base + 3

    def describe(pid: int, name: str) -> None:
        metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                         "args": {"name": f"{prefix}{name}"}})
        metadata.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                         "args": {"sort_index": pid}})

    # Scheduler-worker lanes: the step-sequence axis.
    seen_workers: set[int] = set()
    if scheduler_events:
        describe(worker_pid, "scheduler workers (step-sequence axis)")
    for event in scheduler_events:
        if event.worker not in seen_workers:
            seen_workers.add(event.worker)
            metadata.append(
                {"ph": "M", "name": "thread_name", "pid": worker_pid,
                 "tid": event.worker, "args": {"name": f"worker {event.worker}"}}
            )
        spans.append(
            {
                "name": f"q{event.query_id} {event.label}",
                "cat": "scheduler",
                "ph": "X",
                "ts": float(event.seq),
                "dur": 1.0,
                "pid": worker_pid,
                "tid": event.worker,
                "args": {
                    "query_id": event.query_id,
                    "tenant": event.tenant,
                    "steps": event.steps,
                    "stolen": event.stolen,
                    "trace_id": event.trace_id,
                    "span_id": event.span_id,
                },
            }
        )

    # Tenant lanes: one box per journal on the same sequence axis.
    tenant_tids: dict[str, int] = {}
    if queries:
        describe(tenant_pid, "tenants (step-sequence axis)")
    for journal, _report in queries:
        tid = tenant_tids.get(journal.tenant)
        if tid is None:
            tid = tenant_tids[journal.tenant] = len(tenant_tids)
            metadata.append(
                {"ph": "M", "name": "thread_name", "pid": tenant_pid,
                 "tid": tid, "args": {"name": f"tenant {journal.tenant}"}}
            )
        args = {
            "trace_id": journal.trace_id,
            "handle": journal.handle,
            "terminal": journal.terminal,
            "attempts": journal.attempts,
            "steps": journal.steps,
            "total_seconds": journal.total_seconds,
        }
        if journal.first_seq >= 0:
            spans.append(
                {
                    "name": f"{journal.trace_id} {journal.handle}",
                    "cat": "query",
                    "ph": "X",
                    "ts": float(journal.first_seq),
                    "dur": float(max(1, journal.last_seq - journal.first_seq)),
                    "pid": tenant_pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            # Never scheduled (shed / rejected): an instant at its
            # submission index keeps the refusal visible on the lane.
            spans.append(
                {
                    "name": f"{journal.trace_id} {journal.terminal}",
                    "cat": "query",
                    "ph": "i",
                    "s": "t",
                    "ts": float(journal.submission),
                    "pid": tenant_pid,
                    "tid": tid,
                    "args": args,
                }
            )

    # Per-query processes on the simulated axis.
    journal_pids: dict[str, int] = {}
    for index, (journal, report) in enumerate(queries):
        pid = pid_base + 10 + index
        journal_pids[journal.trace_id] = pid
        describe(pid, f"{journal.trace_id} ({journal.handle})")
        metadata.append(
            {"ph": "M", "name": "thread_name", "pid": pid,
             "tid": _LIFECYCLE_TID, "args": {"name": "lifecycle"}}
        )
        for entry in journal.events:
            spans.append(
                {
                    "name": entry.kind,
                    "cat": "lifecycle",
                    "ph": "i",
                    "s": "p",
                    "ts": entry.sim_time * time_scale,
                    "pid": pid,
                    "tid": _LIFECYCLE_TID,
                    "args": {"span_id": entry.span_id,
                             "attempt": entry.attempt,
                             **dict(entry.detail)},
                }
            )
        if report is None:
            continue
        report_events: list[SimEvent] = []
        profile = getattr(report, "profile", None)
        if profile is not None:
            report_events.extend(profile.spans)
            if getattr(profile, "dropped_spans", 0):
                metadata.append(
                    {"ph": "M", "name": "dropped_spans", "pid": pid,
                     "args": {"dropped_spans": profile.dropped_spans}}
                )
        for trace in getattr(report, "traces", ()):
            report_events.extend(trace.events())
        report_events.extend(getattr(report, "recovery_events", ()))
        op_tids: dict[int, int] = {}
        named: set[int] = set()
        for event in report_events:
            if event.kind == "operator":
                tid = _QUERY_OPERATOR_TID_BASE + op_tids.setdefault(
                    getattr(event, "node_id", 0), len(op_tids)
                )
                if tid not in named:
                    named.add(tid)
                    metadata.append(
                        {"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid,
                         "args": {"name": getattr(event, "op_type", event.label)}}
                    )
                name = event.label
                cat = "operator"
            else:
                tid = _QUERY_SUBSTRATE_TID_BASE + event.rank + 1
                if tid not in named:
                    named.add(tid)
                    lane = ("driver" if event.rank == DRIVER_RANK
                            else f"rank {event.rank}")
                    metadata.append(
                        {"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": lane}}
                    )
                name = f"{event.kind}:{event.label}"
                cat = "substrate"
            args = event.chrome_args()
            if event.trace_id:
                args = {**args, "trace_id": event.trace_id,
                        "span_id": event.span_id,
                        "parent_span_id": event.parent_span_id}
            spans.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": event.start * time_scale,
                    "dur": max(0.0, event.duration) * time_scale,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )

    # Lifecycle transitions: traced ones join their query's process,
    # the rest (breaker state changes) get a server lane.
    server_described = False
    for event in lifecycle_events:
        pid = journal_pids.get(event.trace_id)
        tid = _LIFECYCLE_TID
        if pid is None:
            if not server_described:
                server_described = True
                describe(server_pid, "server")
                metadata.append(
                    {"ph": "M", "name": "thread_name", "pid": server_pid,
                     "tid": _LIFECYCLE_TID, "args": {"name": "transitions"}}
                )
            pid = server_pid
        args = event.chrome_args()
        if event.trace_id:
            args = {**args, "trace_id": event.trace_id,
                    "span_id": event.span_id,
                    "parent_span_id": event.parent_span_id}
        spans.append(
            {
                "name": f"{event.kind}:{event.label}",
                "cat": "lifecycle",
                "ph": "i",
                "s": "p",
                "ts": event.start * time_scale,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return metadata + spans


def write_serving_chrome_trace(
    path: str,
    queries: Sequence[tuple["QueryJournal", "ExecutionReport | None"]],
    scheduler_events: Sequence["SchedulerEvent"] = (),
    lifecycle_events: Sequence[SimEvent] = (),
    pid_base: int = 0,
    label_prefix: str = "",
) -> int:
    """Write a serving-run trace JSON to ``path``; returns the event count."""
    events = serving_trace_events(
        queries,
        scheduler_events=scheduler_events,
        lifecycle_events=lifecycle_events,
        pid_base=pid_base,
        label_prefix=label_prefix,
    )
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        handle.write("\n")
    return len(events)
