"""Tenant and handle SLO latency accounting over the serving metrics.

The server records every completed query's end-to-end *simulated*
latency (the retry chain included: backoff + all attempts) into
``serving_latency_seconds{tenant=...}`` and
``serving_handle_latency_seconds{handle=...}`` histograms.  With an
:class:`SLOConfig` armed, every settled query also feeds a
``serving_slo_miss`` burn counter — completions over the latency target
plus terminal failures and deadline misses burn error budget;
cancellations are client actions and burn nothing.

:func:`build_slo_report` turns a
:class:`~repro.observability.metrics.MetricsSnapshot` into the
``repro slo`` report: per-tenant and per-handle p50/p95/p99 estimates
(:func:`~repro.observability.metrics.bucket_quantile`), burn counts,
and the burn-rate verdict against the configured objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability.metrics import exponential_bounds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.metrics import MetricsSnapshot

__all__ = [
    "SERVING_LATENCY_BOUNDS",
    "SLOConfig",
    "SLOEntry",
    "SLOReport",
    "build_slo_report",
]

#: Bucket layout of the serving latency histograms: powers of two from
#: 10µs to ~84s.  Finer than the default metric bounds so quantile
#: estimates stay non-degenerate across a mixed query workload.
SERVING_LATENCY_BOUNDS = exponential_bounds(start=1e-5, factor=2.0, count=24)


@dataclass(frozen=True)
class SLOConfig:
    """Latency objective for served queries.

    Attributes:
        target_seconds: End-to-end simulated-latency target; a completed
            query slower than this burns error budget.
        objective: Fraction of settled queries that must meet the target
            (e.g. 0.99 → a 1% error budget).
        per_tenant: ``(tenant, target_seconds)`` overrides.
    """

    target_seconds: float = 1.0
    objective: float = 0.99
    per_tenant: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.target_seconds <= 0:
            raise ValueError(
                f"SLO target must be positive, got {self.target_seconds}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1], got {self.objective}"
            )

    def target_for(self, tenant: str) -> float:
        for name, target in self.per_tenant:
            if name == tenant:
                return target
        return self.target_seconds

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class SLOEntry:
    """One tenant's (or handle's) latency/burn accounting."""

    #: ``tenant`` or ``handle``.
    scope: str
    name: str
    target_seconds: float
    objective: float
    #: Queries that completed successfully (latency samples).
    completed: int
    #: Settled queries that burned error budget (slow + failed +
    #: deadline-missed; cancellations excluded).
    burned: int
    #: All settled queries considered for the burn rate.
    considered: int
    p50: float
    p95: float
    p99: float

    @property
    def burn_rate(self) -> float:
        if self.considered <= 0:
            return 0.0
        return self.burned / self.considered

    @property
    def ok(self) -> bool:
        return self.burn_rate <= (1.0 - self.objective) + 1e-12

    def as_dict(self) -> dict[str, Any]:
        return {
            "scope": self.scope,
            "name": self.name,
            "target_seconds": self.target_seconds,
            "objective": self.objective,
            "completed": self.completed,
            "burned": self.burned,
            "considered": self.considered,
            "burn_rate": self.burn_rate,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class SLOReport:
    """The ``repro slo`` report: per-tenant and per-handle entries."""

    config: SLOConfig
    tenants: tuple[SLOEntry, ...]
    handles: tuple[SLOEntry, ...]

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.tenants + self.handles)

    def tenant(self, name: str) -> SLOEntry | None:
        for entry in self.tenants:
            if entry.name == name:
                return entry
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "target_seconds": self.config.target_seconds,
            "objective": self.config.objective,
            "ok": self.ok,
            "tenants": [entry.as_dict() for entry in self.tenants],
            "handles": [entry.as_dict() for entry in self.handles],
        }

    def render(self) -> str:
        lines = [
            f"SLO: target {self.config.target_seconds:g}s simulated, "
            f"objective {self.config.objective:.2%} "
            f"(error budget {self.config.error_budget:.2%})"
        ]
        for scope, entries in (("tenant", self.tenants), ("handle", self.handles)):
            for entry in entries:
                verdict = "ok" if entry.ok else "BURNING"
                lines.append(
                    f"  {scope} {entry.name}: p50={entry.p50 * 1e3:.3f}ms "
                    f"p95={entry.p95 * 1e3:.3f}ms p99={entry.p99 * 1e3:.3f}ms "
                    f"({entry.completed} completed); burn "
                    f"{entry.burned}/{entry.considered} "
                    f"({entry.burn_rate:.2%}) -> {verdict}"
                )
        if len(lines) == 1:
            lines.append("  no settled queries observed")
        return "\n".join(lines)


def _entries(
    snapshot: "MetricsSnapshot",
    config: SLOConfig,
    scope: str,
    latency_metric: str,
    considered_by_name: dict[str, int],
) -> tuple[SLOEntry, ...]:
    entries = []
    for sample in snapshot.find(latency_metric):
        name = sample.labels.get(scope)
        if name is None:
            continue
        completed = sample.count
        burned = int(
            snapshot.value("serving_slo_miss", **{scope: name})
        )
        considered = considered_by_name.get(name, completed)
        entries.append(
            SLOEntry(
                scope=scope,
                name=name,
                target_seconds=(
                    config.target_for(name) if scope == "tenant"
                    else config.target_seconds
                ),
                objective=config.objective,
                completed=completed,
                burned=burned,
                considered=max(considered, completed),
                p50=sample.quantile(0.50),
                p95=sample.quantile(0.95),
                p99=sample.quantile(0.99),
            )
        )
    return tuple(sorted(entries, key=lambda e: e.name))


def build_slo_report(
    snapshot: "MetricsSnapshot", config: SLOConfig | None = None
) -> SLOReport:
    """Assemble the SLO report from one serving metrics snapshot.

    The burn denominator per tenant is every settled query the SLO
    speaks about: completed + failed + deadline-missed (shed/rejected
    never ran; cancelled is a client action).
    """
    config = config if config is not None else SLOConfig()
    considered: dict[str, int] = {}
    for metric in (
        "serving_completed",
        "serving_failed",
        "serving_deadline_missed",
    ):
        for name, value in snapshot.by_label(metric, "tenant").items():
            considered[name] = considered.get(name, 0) + int(value)
    handle_considered = {
        name: int(value)
        for name, value in snapshot.by_label(
            "serving_handle_settled", "handle"
        ).items()
    }
    return SLOReport(
        config=config,
        tenants=_entries(
            snapshot, config, "tenant", "serving_latency_seconds", considered
        ),
        handles=_entries(
            snapshot,
            config,
            "handle",
            "serving_handle_latency_seconds",
            handle_considered,
        ),
    )
