"""The operator-level profiler and the :class:`PlanProfile` it produces.

Every concrete :class:`~repro.core.operator.Operator` subclass has its
``rows``/``batches`` data paths wrapped by a base-class hook (see
``Operator.__init_subclass__``).  The wrapper costs one attribute check per
generator *creation* when profiling is off; when a :class:`Profiler` is
attached to the :class:`~repro.core.context.ExecutionContext`, each
activation is observed:

* **counts** — rows and batches yielded, activations (``calls``);
* **self time** — simulated and wall-clock seconds attributed to *this*
  operator's frames only, via a frame stack: while an operator pulls from
  its upstream, the elapsed time is charged to the upstream, exactly like
  a tracing CPU profiler separates self from inclusive time;
* **mode attribution** — the same node's fused vs. interpreted totals are
  kept apart, so a plan run in both modes shows where fusion pays;
* **spans** — one :class:`~repro.observability.events.OperatorSpan` per
  activation (first pull to close) on the rank's simulated clock, feeding
  the Chrome-trace exporter.

``MpiExecutor`` gives each simulated rank a child profiler and merges the
per-rank measurements back into the driver's profiler (sums, plus the
max-over-ranks self time — a phase lasts as long as its slowest rank).

:class:`PlanProfile` snapshots the measurements into a tree mirroring the
plan (nested plans included) and renders the EXPLAIN-ANALYZE-style report
of ``Query.explain(analyze=True)`` / ``repro explain --analyze``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

from repro.observability.events import DRIVER_RANK, OperatorSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operator import Operator

__all__ = [
    "OperatorStats",
    "Profiler",
    "PlanProfile",
    "ProfileNode",
    "uninstrumented",
]


class OperatorStats:
    """Measured totals for one plan node across one profiled execution."""

    __slots__ = (
        "calls",
        "rows_out",
        "batches_out",
        "sim_seconds",
        "wall_seconds",
        "max_rank_sim_seconds",
        "sim_by_mode",
        "rows_by_mode",
        "depth",
    )

    def __init__(self) -> None:
        #: Generator activations (a nested plan activates once per
        #: invocation; on a cluster, once per rank per invocation).
        self.calls = 0
        self.rows_out = 0
        self.batches_out = 0
        #: Simulated self seconds: time the simulated clock advanced while
        #: this node's frame was on top of the profiler stack.
        self.sim_seconds = 0.0
        #: Real (wall-clock) self seconds, same attribution.
        self.wall_seconds = 0.0
        #: After merging ranks: the largest per-rank simulated self time —
        #: the node's contribution to the makespan.
        self.max_rank_sim_seconds = 0.0
        self.sim_by_mode: dict[str, float] = {}
        self.rows_by_mode: dict[str, int] = {}
        #: Live activation nesting (reentrancy guard); not part of results.
        self.depth = 0

    @property
    def executed(self) -> bool:
        return self.calls > 0

    def merge(self, other: "OperatorStats") -> None:
        """Fold another profiler's measurements of the same node in."""
        self.calls += other.calls
        self.rows_out += other.rows_out
        self.batches_out += other.batches_out
        self.sim_seconds += other.sim_seconds
        self.wall_seconds += other.wall_seconds
        self.max_rank_sim_seconds = max(
            self.max_rank_sim_seconds,
            other.max_rank_sim_seconds or other.sim_seconds,
        )
        for mode, seconds in other.sim_by_mode.items():
            self.sim_by_mode[mode] = self.sim_by_mode.get(mode, 0.0) + seconds
        for mode, rows in other.rows_by_mode.items():
            self.rows_by_mode[mode] = self.rows_by_mode.get(mode, 0) + rows

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "rows_out": self.rows_out,
            "batches_out": self.batches_out,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "max_rank_sim_seconds": self.max_rank_sim_seconds,
            "sim_by_mode": dict(self.sim_by_mode),
            "rows_by_mode": dict(self.rows_by_mode),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OperatorStats(calls={self.calls}, rows={self.rows_out}, "
            f"sim={self.sim_seconds:.6f}s)"
        )


class Profiler:
    """Runtime recorder for one execution context (one clock, one thread).

    The driver's profiler observes driver-side operators; ``MpiExecutor``
    creates one :meth:`child` per rank (bound to the rank's clock) and
    :meth:`absorb`\\ s them after each job, so a single profiler ends up
    holding the whole plan's measurements.
    """

    #: Span-recording backstop: a plan with pathologically many nested-plan
    #: invocations keeps its stats exact but stops recording new spans here
    #: (``dropped_spans`` says how many were cut).
    MAX_SPANS = 200_000

    __slots__ = ("clock", "rank", "stats", "ops", "spans", "dropped_spans", "_stack")

    def __init__(self, clock, rank: int = DRIVER_RANK) -> None:
        self.clock = clock
        self.rank = rank
        self.stats: dict[int, OperatorStats] = {}
        self.ops: dict[int, "Operator"] = {}
        self.spans: list[OperatorSpan] = []
        self.dropped_spans = 0
        #: Active frames: ``[stats, sim_mark, wall_mark]`` lists.
        self._stack: list[list] = []

    # -- recording ---------------------------------------------------------

    def record_for(self, op: "Operator") -> OperatorStats:
        rec = self.stats.get(id(op))
        if rec is None:
            rec = OperatorStats()
            self.stats[id(op)] = rec
            self.ops[id(op)] = op
        return rec

    def observe(self, op: "Operator", fn, ctx, batched: bool) -> Iterator:
        """Wrap one ``rows``/``batches`` activation of ``op``.

        Called lazily (this is a generator function), so the reentrancy
        check runs at first pull: when the same node is already being
        observed on this context — e.g. the default ``rows`` deriving from
        the node's own ``batches`` — the inner activation passes through
        uncounted, keeping row counts and self time single-counted.
        """
        rec = self.record_for(op)
        inner = fn(op, ctx)
        if rec.depth:
            yield from inner
            return
        rec.depth += 1
        rec.calls += 1
        mode = ctx.mode
        metrics = ctx.metrics
        clock = self.clock
        rows = 0
        batches = 0
        start_sim = clock.now
        sim_before = rec.sim_seconds
        try:
            while True:
                self._push(rec)
                try:
                    item = next(inner)
                except StopIteration:
                    break
                finally:
                    self._pop()
                if batched:
                    batches += 1
                    rows += len(item)
                else:
                    rows += 1
                yield item
        finally:
            rec.depth -= 1
            rec.rows_out += rows
            rec.batches_out += batches
            rec.rows_by_mode[mode] = rec.rows_by_mode.get(mode, 0) + rows
            rec.sim_by_mode[mode] = (
                rec.sim_by_mode.get(mode, 0.0) + rec.sim_seconds - sim_before
            )
            # Single-source the work counts: when metrics are also on, the
            # registry is fed from this same loop so profile and metrics
            # reconcile exactly (±0 rows).
            if metrics is not None:
                metrics.record_operator(op, mode, rows, batches)
            self._record_span(op, start_sim, clock.now, rows, batches, mode)

    def _push(self, rec: OperatorStats) -> None:
        sim_now = self.clock.now
        wall_now = perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            top[0].sim_seconds += sim_now - top[1]
            top[0].wall_seconds += wall_now - top[2]
        stack.append([rec, sim_now, wall_now])

    def _pop(self) -> None:
        sim_now = self.clock.now
        wall_now = perf_counter()
        stack = self._stack
        rec, sim_mark, wall_mark = stack.pop()
        rec.sim_seconds += sim_now - sim_mark
        rec.wall_seconds += wall_now - wall_mark
        if stack:
            top = stack[-1]
            top[1] = sim_now
            top[2] = wall_now

    def _record_span(
        self, op: "Operator", start: float, end: float, rows: int, batches: int, mode: str
    ) -> None:
        if len(self.spans) >= self.MAX_SPANS:
            self.dropped_spans += 1
            return
        self.spans.append(
            OperatorSpan(
                rank=self.rank,
                kind="operator",
                label=op.label(),
                start=start,
                end=end,
                op_type=type(op).__name__,
                node_id=id(op),
                rows=rows,
                batches=batches,
                mode=mode,
            )
        )

    # -- distribution ------------------------------------------------------

    def child(self, clock, rank: int) -> "Profiler":
        """A fresh profiler for one rank of an MPI job (own clock/thread)."""
        return Profiler(clock, rank=rank)

    def absorb(self, other: "Profiler | None") -> None:
        """Merge a rank profiler's measurements into this one."""
        if other is None:
            return
        for node_id, rec in other.stats.items():
            self.record_for(other.ops[node_id]).merge(rec)
        room = self.MAX_SPANS - len(self.spans)
        self.spans.extend(other.spans[:room])
        self.dropped_spans += other.dropped_spans + max(0, len(other.spans) - room)


# -- the profile tree ----------------------------------------------------------


@dataclass
class ProfileNode:
    """Per-operator measurements at one position of the plan tree."""

    op_type: str
    abbreviation: str
    label: str
    phase: str
    stats: OperatorStats
    children: list["ProfileNode"] = field(default_factory=list)
    #: Roots of nested plans owned by this operator (NestedMap/MpiExecutor).
    nested: list["ProfileNode"] = field(default_factory=list)

    def walk(self) -> Iterator["ProfileNode"]:
        """Yield each distinct node once (the tree may share DAG nodes)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children)
            stack.extend(node.nested)

    def to_dict(self) -> dict:
        seen: set[int] = set()

        def build(node: "ProfileNode") -> dict:
            entry = {
                "op": node.op_type,
                "label": node.label,
                "phase": node.phase,
                **node.stats.as_dict(),
            }
            if id(node) in seen:
                entry["shared"] = True
                return entry
            seen.add(id(node))
            if node.children:
                entry["children"] = [build(c) for c in node.children]
            if node.nested:
                entry["nested"] = [build(n) for n in node.nested]
            return entry

        return build(self)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}µs"


@dataclass
class PlanProfile:
    """Everything one profiled execution measured, shaped like the plan."""

    root: ProfileNode
    mode: str
    #: Driver simulated seconds for the whole execution.
    total_seconds: float
    spans: list[OperatorSpan] = field(default_factory=list)
    dropped_spans: int = 0
    #: Work-accounting snapshot when the run also recorded metrics;
    #: rendered as an appendix of the EXPLAIN ANALYZE tree.
    metrics: "object | None" = None
    #: Runtime-sanitizer report when the run was sanitized
    #: (``execute(..., sanitize=True)``); rendered as a second appendix.
    sanitizer: "object | None" = None

    @classmethod
    def from_plan(
        cls,
        root_op: "Operator",
        profiler: Profiler,
        total_seconds: float,
        mode: str,
        metrics=None,
    ) -> "PlanProfile":
        """Snapshot ``profiler``'s measurements onto the plan tree."""
        nodes: dict[int, ProfileNode] = {}

        def build(op: "Operator") -> ProfileNode:
            node = nodes.get(id(op))
            if node is not None:
                return node
            node = ProfileNode(
                op_type=type(op).__name__,
                abbreviation=op.abbreviation,
                label=op.label(),
                phase=op.assigned_phase,
                stats=profiler.stats.get(id(op)) or OperatorStats(),
            )
            nodes[id(op)] = node
            node.children = [build(up) for up in op.upstreams]
            node.nested = [build(n) for n in op.nested_roots()]
            return node

        return cls(
            root=build(root_op),
            mode=mode,
            total_seconds=total_seconds,
            spans=list(profiler.spans),
            dropped_spans=profiler.dropped_spans,
            metrics=metrics,
        )

    def nodes(self) -> Iterator[ProfileNode]:
        return self.root.walk()

    def find(self, op_type: str) -> list[ProfileNode]:
        """All nodes of one operator type (e.g. ``"BuildProbe"``)."""
        return [n for n in self.nodes() if n.op_type == op_type]

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """The EXPLAIN ANALYZE plan tree with measured annotations.

        Percentages are of the *scope* the node executed in: driver-side
        nodes against the sum of driver-side self times, each nested plan
        against the summed per-rank self time of its own operators.
        """
        lines = [
            f"EXPLAIN ANALYZE (mode={self.mode}, "
            f"simulated total {_format_seconds(self.total_seconds)})"
        ]

        def scope_total(roots: list[ProfileNode]) -> float:
            total = 0.0
            for start in roots:
                seen: set[int] = set()
                stack = [start]
                while stack:
                    node = stack.pop()
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    total += node.stats.sim_seconds
                    stack.extend(node.children)  # nested scopes excluded
            return total

        rendered: set[int] = set()

        def emit(node: ProfileNode, depth: int, total: float) -> None:
            pad = "  " * depth
            stats = node.stats
            if id(node) in rendered:
                lines.append(f"{pad}{node.abbreviation} {node.op_type} (shared, above)")
                return
            rendered.add(id(node))
            if not stats.executed:
                annot = "never executed"
            else:
                pct = 100.0 * stats.sim_seconds / total if total > 0 else 0.0
                parts = [f"rows={stats.rows_out}"]
                if stats.batches_out:
                    parts.append(f"batches={stats.batches_out}")
                if stats.calls != 1:
                    parts.append(f"calls={stats.calls}")
                parts.append(
                    f"self={_format_seconds(stats.sim_seconds)} ({pct:.1f}%)"
                )
                if stats.max_rank_sim_seconds:
                    parts.append(
                        f"max-rank={_format_seconds(stats.max_rank_sim_seconds)}"
                    )
                if len(stats.sim_by_mode) > 1:
                    parts.append(
                        "modes="
                        + ",".join(
                            f"{m}:{_format_seconds(s)}"
                            for m, s in sorted(stats.sim_by_mode.items())
                        )
                    )
                annot = " ".join(parts)
            lines.append(
                f"{pad}{node.abbreviation} {node.op_type} [phase={node.phase}] {annot}"
            )
            for child in node.children:
                emit(child, depth + 1, total)
            for nested in node.nested:
                nested_total = scope_total([nested])
                lines.append(f"{pad}  (nested plan)")
                emit(nested, depth + 2, nested_total)

        emit(self.root, 0, scope_total([self.root]))
        if self.dropped_spans:
            lines.append(f"({self.dropped_spans} spans dropped beyond the cap)")
        if self.metrics is not None:
            lines.append(self.metrics.render_summary())
        if self.sanitizer is not None:
            lines.append(self.sanitizer.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {
            "mode": self.mode,
            "total_seconds": self.total_seconds,
            "spans": len(self.spans),
            "dropped_spans": self.dropped_spans,
            "plan": self.root.to_dict(),
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.as_dict()
        if self.sanitizer is not None:
            payload["sanitizer"] = self.sanitizer.to_dict()
        return payload


@contextmanager
def uninstrumented():
    """Temporarily strip the observability wrappers off every operator.

    Benchmarks use this to measure the true cost of the disabled-profiler
    hook (``make bench-smoke`` gates it at 5%); it is not meant for
    production code.  Not thread-safe with concurrent plan execution.
    """
    from repro.core.operator import Operator

    patched: list[tuple[type, str, object]] = []
    stack = [Operator]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        for name in ("rows", "batches"):
            fn = cls.__dict__.get(name)
            if fn is not None and getattr(fn, "_observes_data_path", False):
                patched.append((cls, name, fn))
                setattr(cls, name, fn.__wrapped__)
    try:
        yield
    finally:
        for cls, name, fn in patched:
            setattr(cls, name, fn)
