"""Per-operator profiling, typed trace events, and trace export.

The paper's evaluation (§6) reasons in per-phase breakdowns — histogram,
partition, build-probe, network vs. compute.  This package closes the gap
between that style of analysis and the repository's execution layer by
giving every :class:`~repro.core.operator.Operator` a measured identity:

* :mod:`repro.observability.events` — one shared event base
  (:class:`SimEvent`) for substrate trace events and operator spans, plus
  typed per-kind detail payloads;
* :mod:`repro.observability.profile` — the :class:`Profiler` runtime
  recorder (off by default, free when disabled), the
  :class:`PlanProfile` tree returned by ``execute(..., profile=True)``,
  and its EXPLAIN-ANALYZE-style rendering;
* :mod:`repro.observability.chrome_trace` — a ``chrome://tracing`` /
  Perfetto JSON exporter that merges operator spans with
  :class:`~repro.mpi.trace.ClusterTrace` collective/put events on one
  simulated-time axis;
* :mod:`repro.observability.metrics` — the typed work-accounting
  registry (Counter / Gauge / Histogram) behind
  ``execute(..., metrics=True)`` / ``ExecutionReport.metrics`` and the
  ``repro metrics`` Prometheus-style exposition;
* :mod:`repro.observability.tracing` — causal trace contexts
  (:class:`TraceContext`) minted per serving submission and the
  append-only per-query :class:`QueryJournal` audit record;
* :mod:`repro.observability.slo` — per-tenant / per-handle latency
  objectives (:class:`SLOConfig`) and the burn-rate report behind
  ``repro slo``.

Profiling is enabled per execution (``execute(plan, profile=True)``,
``Query.explain(analyze=True)``, ``repro profile``/``repro explain
--analyze`` on the command line); when disabled the data path pays one
attribute check per operator activation and allocates nothing.
"""

from repro.observability.chrome_trace import (
    chrome_trace_events,
    serving_trace_events,
    write_chrome_trace,
    write_serving_chrome_trace,
)
from repro.observability.metrics import (
    METRIC_HELP,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_quantile,
    exponential_bounds,
)
from repro.observability.slo import (
    SERVING_LATENCY_BOUNDS,
    SLOConfig,
    SLOEntry,
    SLOReport,
    build_slo_report,
)
from repro.observability.tracing import (
    JournalEvent,
    QueryJournal,
    TraceContext,
    stamp_event,
    stamp_events,
    stamp_report,
)
from repro.observability.events import (
    CollectiveDetail,
    EventDetail,
    GenericDetail,
    OperatorSpan,
    PutDetail,
    SimEvent,
    WindowDetail,
    detail_for,
)
from repro.observability.profile import (
    OperatorStats,
    PlanProfile,
    ProfileNode,
    Profiler,
    uninstrumented,
)

__all__ = [
    "SimEvent",
    "EventDetail",
    "GenericDetail",
    "PutDetail",
    "CollectiveDetail",
    "WindowDetail",
    "OperatorSpan",
    "detail_for",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "exponential_bounds",
    "Profiler",
    "OperatorStats",
    "PlanProfile",
    "ProfileNode",
    "uninstrumented",
    "chrome_trace_events",
    "serving_trace_events",
    "write_chrome_trace",
    "write_serving_chrome_trace",
    "METRIC_HELP",
    "bucket_quantile",
    "SERVING_LATENCY_BOUNDS",
    "SLOConfig",
    "SLOEntry",
    "SLOReport",
    "build_slo_report",
    "JournalEvent",
    "QueryJournal",
    "TraceContext",
    "stamp_event",
    "stamp_events",
    "stamp_report",
]
