"""The shared event model of the observability layer.

Everything time-stamped that the system records — substrate trace events
(collectives, one-sided puts, window registrations) and operator spans —
derives from one base, :class:`SimEvent`: a ``(rank, kind, label, start,
end)`` interval on the simulated-time axis.  The Chrome-trace exporter
consumes any mix of them uniformly.

Event payloads are *typed*: each event kind carries a small frozen
dataclass (:class:`PutDetail`, :class:`CollectiveDetail`,
:class:`WindowDetail`) instead of an ad-hoc dict.  For compatibility with
older call sites the :class:`EventDetail` base still supports dict-style
``detail["bytes"]`` / ``detail.get("stall", 0.0)`` access, and
:func:`detail_for` converts a plain mapping into the typed form.

This module has no dependencies inside the package, so both the MPI
substrate (:mod:`repro.mpi.trace`) and the execution layer can build on it
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

__all__ = [
    "SimEvent",
    "EventDetail",
    "PutDetail",
    "CollectiveDetail",
    "WindowDetail",
    "FaultDetail",
    "RetryDetail",
    "RecoveryDetail",
    "LifecycleDetail",
    "GenericDetail",
    "OperatorSpan",
    "detail_for",
    "DRIVER_RANK",
]

#: Rank id used for events recorded on the driver (outside any MPI job).
DRIVER_RANK = -1


@dataclass(frozen=True)
class SimEvent:
    """One time-stamped interval on a rank's simulated clock.

    Attributes:
        rank: The rank the event happened on (:data:`DRIVER_RANK` for the
            driver; for puts, the sender).
        kind: Event family — ``collective`` | ``put`` | ``win_create`` for
            substrate events, ``operator`` for operator spans.
        label: Human-readable identity within the kind (collective tag,
            ``put->k``, operator label).
        start: Simulated time the rank entered the event.
        end: Simulated time the event completed for this rank.
        trace_id: Causal trace the event belongs to (empty until stamped).
            Serving stamps every event of a query attempt with the
            query's :class:`~repro.observability.tracing.TraceContext`
            at settlement, so the hot path never pays for tracing.
        span_id: The event's own span within the trace.
        parent_span_id: The causal parent span (attempt or rank span).
    """

    rank: int
    kind: str
    label: str
    start: float
    end: float
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def chrome_args(self) -> dict[str, Any]:
        """Kind-specific numbers for the Chrome-trace ``args`` field."""
        return {}


class EventDetail:
    """Base of the typed per-kind payloads.

    Subclasses are frozen dataclasses; dict-style access is kept so code
    written against the old ``detail`` dicts keeps working.
    """

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key, default)

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class PutDetail(EventDetail):
    """One-sided RMA write: who received how much."""

    target: int
    rows: int
    bytes: int


@dataclass(frozen=True)
class CollectiveDetail(EventDetail):
    """A collective epoch: how long this rank stalled for its peers."""

    stall: float


@dataclass(frozen=True)
class WindowDetail(EventDetail):
    """An RMA window registration: pinned capacity."""

    bytes: int
    rows: int


@dataclass(frozen=True)
class FaultDetail(EventDetail):
    """An injected fault fired: what kind, on which attempt, against whom.

    ``fault`` is one of ``put_drop`` | ``collective_drop`` | ``crash`` |
    ``straggler`` | ``memory_pressure``.
    """

    fault: str
    attempt: int = 0
    target: int = -1


@dataclass(frozen=True)
class RetryDetail(EventDetail):
    """A transient comm fault being retried: the backoff wait interval."""

    op: str
    attempt: int
    backoff: float


@dataclass(frozen=True)
class RecoveryDetail(EventDetail):
    """A driver-side recovery action at a pipeline stage.

    ``action`` is one of ``stage_retry`` | ``degrade_cluster`` |
    ``checkpoint_hit`` | ``broadcast_fallback``.
    """

    action: str
    stage: str = ""
    attempt: int = 0
    lost_rank: int = -1


@dataclass(frozen=True)
class LifecycleDetail(EventDetail):
    """One serving-layer query-lifecycle transition.

    ``transition`` is one of ``deadline_missed`` | ``cancelled`` |
    ``retry`` | ``shed`` | ``failed`` | ``breaker_open`` |
    ``breaker_half_open`` | ``breaker_closed`` | ``breaker_rejected``.
    Times on the carrying event are the query's simulated clock (retry
    events span the backoff interval); breaker/shed events happen at the
    submission boundary and carry a zero-length interval.
    """

    transition: str
    query_id: int = -1
    tenant: str = ""
    handle: str = ""
    attempt: int = 0
    reason: str = ""


@dataclass(frozen=True)
class GenericDetail(EventDetail):
    """Fallback payload for event kinds without a dedicated detail type."""

    values: tuple[tuple[str, Any], ...] = ()

    def __getitem__(self, key: str) -> Any:
        for name, value in self.values:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.values:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.values)


_DETAIL_TYPES: dict[str, type] = {
    "put": PutDetail,
    "collective": CollectiveDetail,
    "win_create": WindowDetail,
    "fault": FaultDetail,
    "retry": RetryDetail,
    "recovery": RecoveryDetail,
    "lifecycle": LifecycleDetail,
}


def detail_for(kind: str, payload: Mapping[str, Any] | EventDetail) -> EventDetail:
    """The typed detail for ``kind``, converting a plain mapping if needed."""
    if isinstance(payload, EventDetail):
        return payload
    detail_type = _DETAIL_TYPES.get(kind)
    if detail_type is None:
        return GenericDetail(tuple(payload.items()))
    return detail_type(**payload)


@dataclass(frozen=True)
class OperatorSpan(SimEvent):
    """One operator activation: a generator's life from first pull to close.

    Recorded by the :class:`~repro.observability.profile.Profiler` on the
    rank's simulated clock, so spans land on the same time axis as the
    substrate's :class:`~repro.mpi.trace.TraceEvent` records.
    """

    op_type: str = ""
    #: Identity of the plan node (stable for one plan object); the Chrome
    #: exporter uses it to give every operator its own track.
    node_id: int = 0
    rows: int = 0
    batches: int = 0
    mode: str = "fused"

    def chrome_args(self) -> dict[str, Any]:
        return {"rows": self.rows, "batches": self.batches, "mode": self.mode}
