"""Typed query-level metrics: how much work an execution actually did.

PR 3's profiler answers *where time goes* inside one run; this module
answers *how much work* the run did — rows per operator, bytes shuffled
per exchange, memory high-water, retries — the per-operator cardinality
and volume observations cost-based cross-platform optimizers are built
on (RHEEMix et al.), and the raw material of the benchmark-regression
harness (:mod:`repro.bench.history`).

Three instrument kinds, Prometheus-flavoured:

* :class:`Counter` — monotone totals (rows, bytes, puts, retries);
* :class:`Gauge` — high-water levels (``RowVector`` peak bytes, window
  registration high-water) with *max* merge semantics;
* :class:`Histogram` — fixed exponential buckets over simulated seconds
  or sizes (per-put transfer times, rows per partition send).

Instruments are identified by ``(name, labels)``; the registry
get-or-creates them (:meth:`MetricsRegistry.counter` & co.), so emitting
a sample is one dict lookup plus one float add.  Like the profiler,
metrics are **off by default**: operators read ``ctx.metrics`` once per
activation and do nothing when it is ``None``.

Distribution mirrors the profiler exactly: each simulated rank gets a
:meth:`~MetricsRegistry.child` registry bound to its rank, and only the
*successful* attempt of a recovered stage is
:meth:`~MetricsRegistry.absorb`\\ ed into the driver's registry (counters
and histogram buckets add, gauges take the max), keeping a per-rank
breakdown on the side.

:meth:`MetricsRegistry.snapshot` freezes everything into a
:class:`MetricsSnapshot` — the JSON-clean, queryable form surfaced as
``ExecutionReport.metrics``, rendered into EXPLAIN ANALYZE and the
``repro metrics`` Prometheus-style text exposition.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operator import Operator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_HELP",
    "MetricsRegistry",
    "MetricSample",
    "MetricsSnapshot",
    "bucket_quantile",
    "exponential_bounds",
]

#: ``# HELP`` text per metric family in the Prometheus exposition.
#: Unlisted names fall back to a generic line (exposition stays valid).
METRIC_HELP: dict[str, str] = {
    "broadcast_bytes": "Bytes replicated to every rank by broadcast joins",
    "broadcast_rows": "Rows replicated to every rank by broadcast joins",
    "checkpoint_hits": "Stage re-executions answered from sealed checkpoints",
    "comm_collectives": "Collective operations executed on the substrate",
    "comm_put_bytes": "Bytes moved by one-sided puts",
    "comm_put_rows": "Rows moved by one-sided puts",
    "comm_put_seconds": "Simulated seconds per one-sided put",
    "comm_puts": "One-sided put operations issued",
    "comm_window_bytes_hwm": "High-water bytes registered in RMA windows",
    "comm_windows": "RMA window registrations",
    "fault_retries": "Substrate-level retries of dropped operations",
    "join_build_rows": "Rows ingested by join build sides",
    "join_dispatch": "Join kernel dispatch decisions by kernel",
    "materialized_bytes": "Bytes materialized into RowVectors",
    "morsels_drained": "Driver-level morsel steps drained",
    "operator_batches_out": "Batches emitted per operator and mode",
    "operator_calls": "Data-path activations per operator",
    "operator_rows_out": "Rows emitted per operator and mode",
    "plan_input_bytes": "Bytes bound as plan parameters",
    "recovery_actions": "Driver-level stage recovery actions",
    "rowvector_peak_bytes": "Largest single RowVector materialization",
    "scan_bytes": "Bytes read by table scans",
    "scan_rows": "Rows read by table scans",
    "serving_breaker_rejected": "Submissions fast-failed by an open circuit breaker",
    "serving_breaker_state": "Circuit breaker state per handle (0 closed, 1 half-open, 2 open)",
    "serving_cancelled": "Queries settled by cooperative cancellation",
    "serving_completed": "Queries completed successfully",
    "serving_deadline_missed": "Queries settled by simulated-clock deadline misses",
    "serving_failed": "Queries settled by terminal failures",
    "serving_handle_latency_seconds": "End-to-end simulated latency of completed queries per handle",
    "serving_handle_settled": "Settled queries considered for SLO burn per handle",
    "serving_in_flight": "Queries admitted and not yet settled",
    "serving_latency_seconds": "End-to-end simulated latency of completed queries per tenant",
    "serving_quanta": "Scheduler quanta executed per worker",
    "serving_rejected": "Submissions refused by hard admission control",
    "serving_retries": "Server-level retry attempts after retryable faults",
    "serving_shed": "Submissions refused by load-aware shedding",
    "serving_simulated_millis": "Simulated milliseconds consumed by completed queries",
    "serving_slo_miss": "Settled queries that burned SLO error budget",
    "serving_steals": "Tasks stolen from other workers' queues",
    "serving_steps": "Morsel steps executed per tenant",
    "serving_submitted": "Query submissions admitted to the scheduler",
    "shuffle_bytes": "Bytes exchanged by hash-partitioned shuffles",
    "shuffle_rows": "Rows exchanged by hash-partitioned shuffles",
}


def exponential_bounds(
    start: float = 1e-6, factor: float = 4.0, count: int = 12
) -> tuple[float, ...]:
    """Fixed exponential bucket boundaries ``start * factor**i``.

    The default covers 1µs to ~4.2s in twelve powers of four — wide
    enough for every simulated duration the substrate produces, coarse
    enough that bucket counts stay meaningful across run sizes.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"exponential bounds need start > 0, factor > 1, count >= 1; "
            f"got start={start}, factor={factor}, count={count}"
        )
    return tuple(start * factor**i for i in range(count))


def bucket_quantile(
    bounds: tuple[float, ...],
    buckets: tuple[int, ...] | list[int],
    count: int,
    q: float,
) -> float:
    """Quantile estimate from cumulative-style bucket counts.

    ``buckets[i]`` counts samples ``<= bounds[i]`` (one trailing overflow
    bucket), exactly the :class:`Histogram` layout.  The estimate
    interpolates linearly inside the containing bucket — the Prometheus
    ``histogram_quantile`` convention — so it is exact to within one
    bucket width (the property test sweeps this against
    ``numpy.percentile``).  Samples landing in the overflow bucket clamp
    to the highest finite bound; an empty distribution returns NaN.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    rank = q * count
    cumulative = 0
    for i in range(len(bounds)):
        in_bucket = buckets[i]
        if in_bucket and cumulative + in_bucket >= rank:
            lower = bounds[i - 1] if i else 0.0
            upper = bounds[i]
            fraction = max(0.0, rank - cumulative) / in_bucket
            return lower + (upper - lower) * fraction
        cumulative += in_bucket
    # Everything at/after the target rank overflowed the finite bounds.
    return bounds[-1] if bounds else float("nan")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    add = inc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A high-water level; merging across ranks takes the maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def add(self, delta) -> None:
        """Up-down adjustment (e.g. in-flight query counts); may go negative
        transiently, which a final snapshot should never show."""
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class Histogram:
    """Sample distribution over fixed exponential buckets.

    ``buckets[i]`` counts samples ``<= bounds[i]``; one implicit overflow
    bucket (``+Inf``) catches the rest.  Bounds are shared between the
    driver registry and its rank children so buckets merge by addition.
    """

    __slots__ = ("bounds", "buckets", "count", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Bucketed quantile estimate (see :func:`bucket_quantile`)."""
        return bucket_quantile(self.bounds, self.buckets, self.count, q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, sum={self.sum:.6g})"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Mutable instrument store for one execution context (one rank).

    The driver's registry observes driver-side operators;
    :mod:`repro.faults.stage_recovery` creates one :meth:`child` per rank
    of each MPI job and absorbs the successful attempt's children, so a
    single registry ends up holding the whole plan's work accounting.
    """

    __slots__ = ("rank", "_counters", "_gauges", "_histograms", "_op_depth", "rank_totals")

    #: Rank id of the driver registry (mirrors events.DRIVER_RANK).
    DRIVER = -1

    def __init__(self, rank: int = DRIVER) -> None:
        self.rank = rank
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        #: Live activation nesting per plan node (reentrancy guard for the
        #: metrics-only observe path; mirrors OperatorStats.depth).
        self._op_depth: dict[int, int] = {}
        #: Per-rank totals retained by :meth:`absorb`:
        #: ``rank -> metric name -> summed value``.
        self.rank_totals: dict[int, dict[str, float]] = {}

    # -- instrument access (get-or-create) ---------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                bounds if bounds is not None else exponential_bounds()
            )
        return instrument

    # -- operator-layer recording ------------------------------------------

    def record_operator(
        self, op: "Operator", mode: str, rows: int, batches: int
    ) -> None:
        """Fold one data-path activation's counts in.

        Called from the profiler's observation loop when both subsystems
        are on (so rows are counted once and the two reports agree ±0),
        or from :meth:`observe` when only metrics are enabled.
        """
        name = type(op).__name__
        self.counter("operator_rows_out", op=name, mode=mode).add(rows)
        if batches:
            self.counter("operator_batches_out", op=name, mode=mode).add(batches)
        self.counter("operator_calls", op=name).inc()

    def observe(self, op: "Operator", fn, ctx, batched: bool) -> Iterator:
        """Metrics-only wrapper of one ``rows``/``batches`` activation.

        Mirrors ``Profiler.observe``'s reentrancy rule: when the same
        node is already being observed on this registry — the default
        ``rows`` deriving from the node's own ``batches`` — the inner
        activation passes through uncounted.
        """
        inner = fn(op, ctx)
        depth = self._op_depth
        key = id(op)
        if depth.get(key):
            yield from inner
            return
        depth[key] = 1
        rows = 0
        batches = 0
        try:
            for item in inner:
                if batched:
                    batches += 1
                    rows += len(item)
                else:
                    rows += 1
                yield item
        finally:
            depth[key] = 0
            self.record_operator(op, ctx.mode, rows, batches)

    # -- storage-layer accounting ------------------------------------------

    def account_memory(self, payload_bytes: int) -> None:
        """One materialized ``RowVector`` of ``payload_bytes`` exists.

        Feeds the memory-accounting hook of ``ExecutionContext``: the
        counter totals every byte materialized, the gauge keeps the
        largest single materialization — the resident high-water a real
        deployment would size worker memory by.
        """
        self.counter("materialized_bytes").add(payload_bytes)
        self.gauge("rowvector_peak_bytes").set_max(payload_bytes)

    # -- distribution ------------------------------------------------------

    def child(self, rank: int) -> "MetricsRegistry":
        """A fresh registry for one rank of an MPI job (own thread)."""
        return MetricsRegistry(rank=rank)

    def absorb(self, other: "MetricsRegistry | None") -> None:
        """Merge a rank registry in; counters/buckets add, gauges max."""
        if other is None:
            return
        for key, counter in other._counters.items():
            self.counter(key[0], **dict(key[1])).add(counter.value)
        for key, gauge in other._gauges.items():
            self.gauge(key[0], **dict(key[1])).set_max(gauge.value)
        for key, histogram in other._histograms.items():
            self.histogram(key[0], bounds=histogram.bounds, **dict(key[1])).merge(
                histogram
            )
        totals = self.rank_totals.setdefault(other.rank, {})
        for (name, _labels), counter in other._counters.items():
            totals[name] = totals.get(name, 0) + counter.value
        for (name, _labels), gauge in other._gauges.items():
            totals[name] = max(totals.get(name, 0), gauge.value)
        for rank, child_totals in other.rank_totals.items():
            merged = self.rank_totals.setdefault(rank, {})
            for name, value in child_totals.items():
                merged[name] = merged.get(name, 0) + value

    # -- freezing ----------------------------------------------------------

    def snapshot(self) -> "MetricsSnapshot":
        samples = []
        for (name, labels), counter in sorted(self._counters.items()):
            samples.append(
                MetricSample(name, "counter", dict(labels), counter.value)
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            samples.append(MetricSample(name, "gauge", dict(labels), gauge.value))
        for (name, labels), histogram in sorted(self._histograms.items()):
            samples.append(
                MetricSample(
                    name,
                    "histogram",
                    dict(labels),
                    histogram.sum,
                    count=histogram.count,
                    bounds=tuple(histogram.bounds),
                    buckets=tuple(histogram.buckets),
                )
            )
        return MetricsSnapshot(
            samples=samples,
            per_rank={
                rank: dict(totals)
                for rank, totals in sorted(self.rank_totals.items())
            },
        )


@dataclass(frozen=True)
class MetricSample:
    """One frozen instrument: name, labels, kind, and its final value."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: dict
    value: float
    #: Histogram-only: number of observations and the bucket layout.
    count: int = 0
    bounds: tuple[float, ...] = ()
    buckets: tuple[int, ...] = ()

    def quantile(self, q: float) -> float:
        """Bucketed quantile estimate for histogram samples (else NaN)."""
        if self.kind != "histogram":
            return float("nan")
        return bucket_quantile(self.bounds, self.buckets, self.count, q)

    def as_dict(self) -> dict:
        entry: dict = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.kind == "histogram":
            entry["count"] = self.count
            entry["bounds"] = list(self.bounds)
            entry["buckets"] = list(self.buckets)
        return entry


@dataclass
class MetricsSnapshot:
    """Queryable, JSON-clean view of everything one execution recorded."""

    samples: list[MetricSample] = field(default_factory=list)
    #: ``rank -> metric name -> total`` retained from rank children.
    per_rank: dict[int, dict[str, float]] = field(default_factory=dict)

    def find(self, name: str, **labels) -> list[MetricSample]:
        """Samples of one metric whose labels include all of ``labels``."""
        return [
            s
            for s in self.samples
            if s.name == name
            and all(s.labels.get(k) == v for k, v in labels.items())
        ]

    def value(self, name: str, **labels) -> float:
        """Exact-label lookup; 0 when the instrument never fired."""
        for sample in self.samples:
            if sample.name == name and sample.labels == labels:
                return sample.value
        return 0

    def total(self, name: str, **labels) -> float:
        """Sum over every label set of ``name`` matching the filter."""
        return sum(s.value for s in self.find(name, **labels))

    def by_label(self, name: str, label: str) -> dict[str, float]:
        """``label value -> summed total`` breakdown of one metric."""
        out: dict[str, float] = {}
        for sample in self.find(name):
            key = sample.labels.get(label)
            if key is not None:
                out[key] = out.get(key, 0) + sample.value
        return out

    def names(self) -> list[str]:
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.name)
        return list(seen)

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "samples": [s.as_dict() for s in self.samples],
            "per_rank": {
                str(rank): dict(totals)
                for rank, totals in self.per_rank.items()
            },
        }

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus-style text exposition (the ``repro metrics`` body).

        Conforms to the text exposition format: one ``# HELP`` and one
        ``# TYPE`` line per metric family, label values escaped
        (backslash, double quote, newline), counters suffixed ``_total``,
        histograms expanded to cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``.
        """

        def escape(value) -> str:
            return (
                str(value)
                .replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )

        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            merged = {**labels, **(extra or {})}
            if not merged:
                return ""
            inner = ",".join(
                f'{k}="{escape(v)}"' for k, v in sorted(merged.items())
            )
            return "{" + inner + "}"

        lines: list[str] = []
        typed: set[str] = set()
        for sample in self.samples:
            base = prefix + sample.name
            if sample.name not in typed:
                typed.add(sample.name)
                help_text = METRIC_HELP.get(
                    sample.name, f"{sample.name} recorded by the repro runtime"
                )
                # HELP text escapes backslash and newline only (the
                # exposition spec; quotes stay literal outside labels).
                escaped_help = help_text.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {base} {escaped_help}")
                lines.append(f"# TYPE {base} {sample.kind}")
            if sample.kind == "counter":
                lines.append(
                    f"{base}_total{fmt_labels(sample.labels)} {sample.value}"
                )
            elif sample.kind == "gauge":
                lines.append(f"{base}{fmt_labels(sample.labels)} {sample.value}")
            else:
                cumulative = 0
                for bound, count in zip(sample.bounds, sample.buckets):
                    cumulative += count
                    lines.append(
                        f"{base}_bucket"
                        f"{fmt_labels(sample.labels, {'le': f'{bound:g}'})}"
                        f" {cumulative}"
                    )
                cumulative += sample.buckets[len(sample.bounds)]
                lines.append(
                    f"{base}_bucket"
                    f"{fmt_labels(sample.labels, {'le': '+Inf'})} {cumulative}"
                )
                lines.append(f"{base}_sum{fmt_labels(sample.labels)} {sample.value}")
                lines.append(
                    f"{base}_count{fmt_labels(sample.labels)} {sample.count}"
                )
        return "\n".join(lines)

    def render_summary(self) -> str:
        """Compact human-readable block for EXPLAIN ANALYZE / text CLIs."""
        lines = ["metrics:"]
        rows_by_op = self.by_label("operator_rows_out", "op")
        for op, rows in sorted(rows_by_op.items()):
            lines.append(f"  rows_out[{op}] = {int(rows)}")
        for name in (
            "scan_bytes",
            "shuffle_bytes",
            "broadcast_bytes",
            "comm_put_bytes",
            "materialized_bytes",
            "rowvector_peak_bytes",
            "fault_retries",
            "checkpoint_hits",
            "recovery_actions",
        ):
            total = self.total(name)
            if total:
                lines.append(f"  {name} = {int(total)}")
        if self.per_rank:
            ranks = ", ".join(str(r) for r in self.per_rank)
            lines.append(f"  ranks observed: {ranks}")
        return "\n".join(lines)
