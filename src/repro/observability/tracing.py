"""Causal trace contexts and per-query journals for the serving layer.

Every query admitted by :class:`~repro.serving.server.Server` gets a
:class:`TraceContext` minted at ``submit()`` and propagated through the
scheduler (:class:`~repro.serving.scheduler.SchedulerEvent.trace_id`),
each server-level retry attempt (one child span per attempt), the
execution context (:attr:`~repro.core.context.ExecutionContext.trace`)
and stage recovery (one child span per rank).  At settlement the server
stamps the attempt's report — operator spans, substrate trace events,
fault/retry/recovery events — with the attempt's context, so every
:class:`~repro.observability.events.SimEvent` a soak run produces
resolves to exactly one submitted query::

    serve-000007                       query root (one per submission)
    └── serve-000007/a1                attempt span (one per retry attempt)
        ├── serve-000007/a1/r0         rank span (one per executor rank)
        ├── serve-000007/a1/r1
        └── serve-000007/a1/stage:...  recovery spans at stage boundaries

Span ids are deterministic path strings derived from the submission
index — no randomness, no wall clock — so the journal replay test can
assert bit-identical traces across reruns of the same seed.

The :class:`QueryJournal` is the append-only audit record of one
submission's lifecycle (submit → admit → attempt(s) → recovery →
settle) with causal span links and a timing decomposition (backoff,
execution, total on the simulated axis; queue wait on the informational
wall axis).  Journals attach to
:class:`~repro.serving.server.QueryOutcome` and aggregate per prepared
plan in the registry (:meth:`~repro.serving.registry.PlanRegistry.stats_for`)
— the observed-behaviour feed ROADMAP item 2's re-optimizer needs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.observability.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import ExecutionReport

__all__ = [
    "TraceContext",
    "JournalEvent",
    "QueryJournal",
    "stamp_event",
    "stamp_events",
    "stamp_report",
]


@dataclass(frozen=True)
class TraceContext:
    """One node of a query's causal span tree.

    Attributes:
        trace_id: Identity of the whole query trace (one per submission).
        span_id: This node's span — a deterministic path string, e.g.
            ``serve-000003/a2/r1`` (submission 3, attempt 2, rank 1).
        parent_span_id: The parent node's span (empty at the root).
        attempt: Server-level attempt this span belongs to (0 = root,
            before any attempt exists).
        stage: What kind of node this is — ``""`` (root) | ``attempt`` |
            ``rank`` | a recovery stage label.
    """

    trace_id: str
    span_id: str
    parent_span_id: str = ""
    attempt: int = 0
    stage: str = ""

    @classmethod
    def for_query(cls, submission: int, component: str = "serve") -> "TraceContext":
        """Mint the root context for one submission.

        ``submission`` is the server's monotone submission counter (not
        the query id: shed and rejected submissions never get a query id
        but still get a trace), so ids are deterministic in submission
        order.
        """
        trace_id = f"{component}-{submission:06d}"
        return cls(trace_id=trace_id, span_id=trace_id)

    def for_attempt(self, attempt: int) -> "TraceContext":
        """The child span of server-level retry attempt ``attempt``."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{self.span_id}/a{attempt}",
            parent_span_id=self.span_id,
            attempt=attempt,
            stage="attempt",
        )

    def for_rank(self, rank: int) -> "TraceContext":
        """The child span of one executor rank within this attempt."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{self.span_id}/r{rank}",
            parent_span_id=self.span_id,
            attempt=self.attempt,
            stage="rank",
        )

    def for_stage(self, stage: str) -> "TraceContext":
        """A named child span (recovery stages, driver phases)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{self.span_id}/{stage}",
            parent_span_id=self.span_id,
            attempt=self.attempt,
            stage=stage,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "attempt": self.attempt,
            "stage": self.stage,
        }


# -- event stamping ----------------------------------------------------------


def stamp_event(event: SimEvent, ctx: TraceContext) -> bool:
    """Link one (frozen) event to a trace context, in place.

    Events carry empty trace fields until their query settles; stamping
    then is a handful of ``object.__setattr__`` calls per event, so the
    execution hot path pays nothing for tracing (the bench-smoke gate).
    Rank-attributed events (``rank >= 0``) land under the context's rank
    child span; driver events attach to the context itself.  Already
    stamped events are left alone (returns ``False``).
    """
    if event.trace_id:
        return False
    if event.rank >= 0:
        span_id = f"{ctx.span_id}/r{event.rank}"
        parent = ctx.span_id
    else:
        span_id = ctx.span_id
        parent = ctx.parent_span_id
    object.__setattr__(event, "trace_id", ctx.trace_id)
    object.__setattr__(event, "span_id", span_id)
    object.__setattr__(event, "parent_span_id", parent)
    return True


def stamp_events(events: Iterable[SimEvent], ctx: TraceContext) -> int:
    """Stamp a batch of events; returns how many were newly linked."""
    return sum(1 for event in events if stamp_event(event, ctx))


def stamp_report(report: "ExecutionReport", ctx: TraceContext) -> int:
    """Stamp everything one attempt's report recorded with its context.

    Covers operator spans (the profiler), substrate trace events per
    rank (puts, collectives, windows, faults, retries), and driver-side
    recovery events.  Returns the number of events stamped.
    """
    stamped = 0
    profile = getattr(report, "profile", None)
    if profile is not None and getattr(profile, "spans", None):
        stamped += stamp_events(profile.spans, ctx)
    for trace in getattr(report, "traces", ()):
        stamped += stamp_events(trace.events(), ctx)
    stamped += stamp_events(getattr(report, "recovery_events", ()), ctx)
    return stamped


# -- per-query journals ------------------------------------------------------


@dataclass(frozen=True)
class JournalEvent:
    """One audit entry in a query's journal.

    ``detail`` is a sorted ``(key, value)`` tuple — JSON-clean and
    hashable, so journals compare bit-identical across replays.
    """

    kind: str
    span_id: str
    attempt: int
    #: The query's simulated clock when the entry was filed (0.0 for
    #: admission-time entries, which precede any execution).
    sim_time: float
    detail: tuple[tuple[str, Any], ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "span_id": self.span_id,
            "attempt": self.attempt,
            "sim_time": self.sim_time,
            "detail": dict(self.detail),
        }


class QueryJournal:
    """Append-only audit record of one submission's lifecycle.

    Every ``submit()`` call creates exactly one journal — including
    submissions that never reach the scheduler (shed, rejected,
    breaker-rejected) — and every journal settles into exactly one
    terminal state, mirroring the tenant ledger's conservation
    invariant.  All canonical content (:meth:`as_dict` default) is
    derived from counts and simulated clocks only, so two runs of the
    same config produce byte-identical journals.  Wall-clock queue wait
    and scheduler sequence numbers are kept as *informational* fields,
    excluded from the canonical form.
    """

    TERMINAL_STATES = (
        "completed",
        "cancelled",
        "deadline_missed",
        "failed",
        "shed",
        "rejected",
    )

    def __init__(
        self, trace_id: str, submission: int, tenant: str, handle: str
    ) -> None:
        self.trace_id = trace_id
        self.submission = submission
        self.tenant = tenant
        self.handle = handle
        #: Query id once admitted; -1 for shed/rejected submissions.
        self.query_id = -1
        self.events: list[JournalEvent] = []
        self.terminal = ""
        self.reason = ""
        self.attempts = 0
        self.steps = 0
        self.result_rows = -1
        #: Timing decomposition on the simulated axis (seconds).
        self.total_seconds = 0.0
        self.backoff_seconds = 0.0
        self.execution_seconds = 0.0
        #: Informational only (excluded from the canonical form):
        #: wall-clock submit → settle, submit → first scheduled morsel
        #: (queue wait), and the scheduler step-seq span.
        self.wall_seconds = 0.0
        self.queue_wall_seconds = 0.0
        self.first_seq = -1
        self.last_seq = -1
        #: Wall clock at submit (set by the server; informational).
        self._wall_start = 0.0
        self._lock = threading.Lock()

    def note(
        self,
        kind: str,
        span_id: str = "",
        attempt: int = 0,
        sim_time: float = 0.0,
        **detail: Any,
    ) -> JournalEvent:
        """File one audit entry (thread-safe; entries stay append-only)."""
        event = JournalEvent(
            kind=kind,
            span_id=span_id or self.trace_id,
            attempt=attempt,
            sim_time=sim_time,
            detail=tuple(sorted(detail.items())),
        )
        with self._lock:
            self.events.append(event)
        return event

    def record_backoff(self, seconds: float) -> None:
        with self._lock:
            self.backoff_seconds += seconds

    def settle(
        self,
        terminal: str,
        span_id: str = "",
        attempt: int = 0,
        sim_time: float = 0.0,
        steps: int = 0,
        reason: str = "",
        result_rows: int = -1,
        **detail: Any,
    ) -> None:
        """File the terminal entry and freeze the timing decomposition."""
        if terminal not in self.TERMINAL_STATES:
            raise ValueError(f"unknown terminal state {terminal!r}")
        if self.terminal:
            raise RuntimeError(
                f"journal {self.trace_id} already settled as {self.terminal!r}"
            )
        self.note(
            "settled",
            span_id=span_id,
            attempt=attempt,
            sim_time=sim_time,
            terminal=terminal,
            reason=reason,
            **detail,
        )
        with self._lock:
            self.terminal = terminal
            self.reason = reason
            self.attempts = max(self.attempts, attempt)
            self.steps = steps
            self.result_rows = result_rows
            self.total_seconds = sim_time
            self.execution_seconds = max(0.0, sim_time - self.backoff_seconds)

    @property
    def settled(self) -> bool:
        return bool(self.terminal)

    def span_links(self) -> list[str]:
        """Every span the journal's entries reference, in filing order."""
        seen: dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.span_id)
        return list(seen)

    def as_dict(self, canonical: bool = True) -> dict[str, Any]:
        """JSON-clean form; the default (canonical) form is derived from
        counts and simulated clocks only and replays bit-identically.
        Pass ``canonical=False`` to include the informational wall-clock
        and scheduler-sequence fields (artifact exports do)."""
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "submission": self.submission,
            "tenant": self.tenant,
            "handle": self.handle,
            "query_id": self.query_id,
            "terminal": self.terminal,
            "reason": self.reason,
            "attempts": self.attempts,
            "steps": self.steps,
            "result_rows": self.result_rows,
            "total_seconds": self.total_seconds,
            "backoff_seconds": self.backoff_seconds,
            "execution_seconds": self.execution_seconds,
            "events": [event.as_dict() for event in self.events],
        }
        if not canonical:
            out["wall_seconds"] = self.wall_seconds
            out["queue_wall_seconds"] = self.queue_wall_seconds
            out["first_seq"] = self.first_seq
            out["last_seq"] = self.last_seq
        return out

    def render(self) -> str:
        lines = [
            f"journal {self.trace_id}: {self.handle} [{self.tenant}] "
            f"-> {self.terminal or 'in flight'}"
            + (f" ({self.reason})" if self.reason else ""),
            f"  attempts={self.attempts} steps={self.steps} "
            f"total={self.total_seconds:.6f}s "
            f"(execution {self.execution_seconds:.6f}s + "
            f"backoff {self.backoff_seconds:.6f}s)",
        ]
        for event in self.events:
            extras = "".join(
                f" {k}={v}" for k, v in event.detail if v not in ("", -1)
            )
            lines.append(
                f"  [{event.sim_time:.6f}s] {event.kind} "
                f"span={event.span_id}{extras}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryJournal({self.trace_id}, {self.handle!r}, "
            f"terminal={self.terminal!r}, events={len(self.events)})"
        )
