"""Cost-model execution engines standing in for Presto and MemSQL.

The paper's Figure 9 compares Modularis against two closed systems we
cannot run here.  Per the substitution rule, each is modeled as an
*execution-model class*: the engine computes the **real** query result
(through the reference interpreter, so correctness is checked against the
same ground truth as Modularis) while charging a simulated cost per logical
operator, with constants describing the engine's structure:

* how data is read (in-memory columns vs. replicated files on disk),
* per-row processing cost (compiled kernels vs. an interpreted engine),
* how joins shuffle data (planned RDMA-style exchange vs. serialized
  TCP exchange through a coordinator-managed stage boundary),
* fixed per-query overhead (coordinator round-trips, stage scheduling).

The constants are calibrated to the paper's testbed; the *shape* of
Figure 9 — who wins and by what factor on each query — emerges from which
term dominates, not from per-query tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError
from repro.relational.interpreter import (
    Frame,
    aggregate_frame,
    join_frames,
    run_logical_plan,
)
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.storage.catalog import Catalog

__all__ = ["EngineProfile", "EngineRun", "EngineModel"]


@dataclass(frozen=True)
class EngineProfile:
    """Structural cost constants of one engine class."""

    name: str
    #: Worker machines executing the query.
    n_workers: int = 8
    #: Seconds of fixed per-query overhead (coordination, scheduling).
    query_overhead: float = 0.0
    #: Extra fixed seconds per blocking stage boundary (exchanges).
    stage_overhead: float = 0.0
    #: Per-row cost of streaming operators (scan decode, filter, project).
    cpu_row: float = 2.0e-9
    #: Per-row cost of hash-table build / probe work.
    cpu_join_row: float = 4.0e-9
    #: Per-row cost of aggregation updates.
    cpu_agg_row: float = 4.0e-9
    #: Bytes/second each worker reads base-table data at.
    scan_bandwidth: float = 10.0e9
    #: Extra per-row decode cost when reading base tables (file formats).
    scan_row_decode: float = 0.0
    #: Bytes/second each worker moves through exchanges.
    exchange_bandwidth: float = 3.0e9
    #: Per-row (de)serialization cost at exchanges (0 for zero-copy RDMA).
    exchange_row_cost: float = 0.0
    #: Load-imbalance factor: the slowest worker's share vs. the average.
    skew: float = 1.08


@dataclass
class EngineRun:
    """Result and timing of one engine-model execution."""

    frame: Frame
    seconds: float
    breakdown: dict[str, float]


def _frame_row_bytes(frame: Frame) -> int:
    """Stored row width: numbers at native width, strings dictionary-ish.

    numpy unicode columns occupy 4 bytes per character in memory, but every
    engine modeled here stores short categorical strings encoded (ORC/
    columnstore dictionaries); 16 bytes per string column is a generous
    stand-in that matches the STRING atom's network width order.
    """
    total = 0
    for column in frame.columns.values():
        if column.dtype.kind == "U":
            total += 16
        elif column.dtype == object:
            total += 8
        else:
            total += column.dtype.itemsize
    return max(total, 8)


class EngineModel:
    """Executes logical plans while charging an :class:`EngineProfile`."""

    def __init__(self, profile: EngineProfile) -> None:
        self.profile = profile

    def run_query(self, plan: LogicalPlan, catalog: Catalog) -> EngineRun:
        """Compute the real result and the modeled execution time."""
        breakdown: dict[str, float] = {"fixed": self.profile.query_overhead}
        frame = self._execute(plan, catalog, breakdown)
        return EngineRun(frame, sum(breakdown.values()), breakdown)

    # -- node execution -------------------------------------------------------

    def _charge(self, breakdown: dict[str, float], phase: str, seconds: float) -> None:
        breakdown[phase] = breakdown.get(phase, 0.0) + seconds * self.profile.skew

    def _per_worker(self, rows: int) -> float:
        return rows / self.profile.n_workers

    def _execute(
        self, plan: LogicalPlan, catalog: Catalog, breakdown: dict[str, float]
    ) -> Frame:
        profile = self.profile
        if isinstance(plan, ScanNode):
            frame = run_logical_plan(plan, catalog)
            rows = self._per_worker(frame.n_rows)
            row_bytes = _frame_row_bytes(frame)
            self._charge(
                breakdown,
                "scan",
                rows * (profile.cpu_row + profile.scan_row_decode)
                + rows * row_bytes / profile.scan_bandwidth,
            )
            return frame

        if isinstance(plan, FilterNode):
            child = self._execute(plan.child, catalog, breakdown)
            self._charge(
                breakdown, "filter", self._per_worker(child.n_rows) * profile.cpu_row
            )
            keep = np.asarray(plan.predicate.evaluate(child.columns), dtype=bool)
            return child.mask(keep)

        if isinstance(plan, ProjectNode):
            child = self._execute(plan.child, catalog, breakdown)
            self._charge(
                breakdown, "project", self._per_worker(child.n_rows) * profile.cpu_row
            )
            return Frame(
                {
                    alias: np.asarray(expr.evaluate(child.columns))
                    for alias, expr in plan.outputs
                }
            )

        if isinstance(plan, JoinNode):
            left = self._execute(plan.left, catalog, breakdown)
            right = self._execute(plan.right, catalog, breakdown)
            for side in (left, right):
                rows = self._per_worker(side.n_rows)
                bytes_per_row = _frame_row_bytes(side)
                self._charge(
                    breakdown,
                    "exchange",
                    profile.stage_overhead
                    + rows * profile.exchange_row_cost
                    + rows * bytes_per_row / profile.exchange_bandwidth,
                )
            joined = join_frames(left, right, plan.key, plan.kind)
            self._charge(
                breakdown,
                "join",
                self._per_worker(left.n_rows) * profile.cpu_join_row
                + self._per_worker(right.n_rows + joined.n_rows)
                * profile.cpu_join_row,
            )
            return joined

        if isinstance(plan, AggregateNode):
            child = self._execute(plan.child, catalog, breakdown)
            self._charge(
                breakdown,
                "aggregate",
                self._per_worker(child.n_rows) * profile.cpu_agg_row
                + profile.stage_overhead,
            )
            return aggregate_frame(child, plan.group_by, plan.aggregates)

        if isinstance(plan, SortNode):
            child = self._execute(plan.child, catalog, breakdown)
            # Final ordering of an aggregate result is coordinator work
            # over a small frame; charge it at the aggregation rate.
            self._charge(breakdown, "finalize", child.n_rows * profile.cpu_agg_row)
            if child.n_rows == 0:
                return child
            key_columns = []
            for key, desc in zip(reversed(plan.keys), reversed(plan.directions())):
                column = child.columns[key]
                if desc:
                    column = -column
                key_columns.append(column)
            return child.take(np.lexsort(key_columns))

        if isinstance(plan, LimitNode):
            child = self._execute(plan.child, catalog, breakdown)
            self._charge(breakdown, "finalize", child.n_rows * profile.cpu_agg_row)
            return Frame({k: v[: plan.n] for k, v in child.columns.items()})

        raise PlanError(f"unknown logical node {type(plan).__name__}")
