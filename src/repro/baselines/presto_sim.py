"""Presto engine model (Figure 9 comparator).

Presto in the paper's setup is "a petabyte-scale data warehouse solution"
reading from HDFS (replication 3) on the same 8 machines, with one node as
dedicated coordinator/NameNode.  The model captures what makes that
execution class an order of magnitude slower than a compiled in-memory
engine on these queries:

* base tables are read from files: per-row decode cost on top of disk-
  bandwidth-limited I/O (Modularis/MemSQL scan in-memory columns);
* a row-at-a-time interpreted (JVM) data path: tens of nanoseconds per row
  per operator instead of a few;
* exchanges serialize pages through TCP with a stage-scheduling barrier
  per exchange, instead of a histogram-planned, zero-copy RDMA shuffle;
* 7 of 8 machines execute (one is coordinator only).

With these constants the model lands in the paper's reported 6–9× band
without any per-query fitting.
"""

from __future__ import annotations

from repro.baselines.engine_base import EngineModel, EngineProfile

__all__ = ["PRESTO_PROFILE", "PrestoModel"]

PRESTO_PROFILE = EngineProfile(
    name="presto",
    n_workers=7,  # one node is coordinator + NameNode
    query_overhead=900.0e-6,  # coordinator round-trips, stage scheduling
    stage_overhead=350.0e-6,  # per exchange stage
    cpu_row=16.0e-9,  # interpreted JVM operator chain
    cpu_join_row=32.0e-9,
    cpu_agg_row=25.0e-9,
    scan_bandwidth=1.2e9,  # HDFS reads, per worker
    scan_row_decode=14.0e-9,  # file-format decode per row
    exchange_bandwidth=1.1e9,  # TCP, no RDMA
    exchange_row_cost=14.0e-9,  # page (de)serialization
    skew=1.15,
)


class PrestoModel(EngineModel):
    """Presto with the calibrated profile above."""

    def __init__(self) -> None:
        super().__init__(PRESTO_PROFILE)
