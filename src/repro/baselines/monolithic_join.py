"""The monolithic distributed radix hash join (Barthels et al., paper §4.1.1).

One imperative function implements the whole three-phase algorithm of
Figure 2 — histogram computation, multi-pass partitioning with network
transfer and compression, hash build and probe — directly against the
simulated MPI substrate, with no sub-operator abstractions.  This is the
baseline the Modularis plan of Figure 3 is compared against in Figures 6a
and 6b.

Structural differences from the modular plan, mirroring the paper:

* histograms of *both* relations are combined in a single ``MPI_Allreduce``
  and both windows are registered back-to-back, so ranks stall at most once
  per phase (the modular plan runs one collective epoch per upstream path);
* no abstraction overhead: CPU work is charged at the hand-written-loop
  rate (overhead 1.0) instead of the fused-pipeline rate;
* only the final join result is materialized (the paper extended the
  original code with a result materialization to make the comparison fair).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.mpi.cluster import ClusterResult, RankContext, SimCluster
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["MonolithicJoinResult", "run_monolithic_join", "monolithic_radix_join"]

_PUT_CHUNK_ROWS = 1 << 15

#: Wire format of the compressed network transfer.
_PACKED_TYPE = TupleType.of(packed=INT64)


@dataclass
class MonolithicJoinResult:
    """Join output plus the timing evidence of the run."""

    matches: RowVector
    cluster_result: ClusterResult

    @property
    def seconds(self) -> float:
        return self.cluster_result.makespan

    def phase_breakdown(self) -> dict[str, float]:
        return self.cluster_result.phase_breakdown()


def run_monolithic_join(
    cluster: SimCluster,
    left: RowVector,
    right: RowVector,
    key_bits: int = 27,
    network_fanout: int | None = None,
    local_fanout: int = 16,
    compression: bool = True,
) -> MonolithicJoinResult:
    """Run the monolithic join on a cluster and gather the global result.

    Both relations must be ⟨key, payload⟩ INT64 relations with distinct
    payload field names (the paper's 16-byte workload).
    """
    n_net = network_fanout or _next_power_of_two(cluster.n_ranks)
    result = cluster.run(
        lambda ctx: monolithic_radix_join(
            ctx, left, right,
            key_bits=key_bits, network_fanout=n_net,
            local_fanout=local_fanout, compression=compression,
        )
    )
    parts = [p for p in result.per_rank if len(p)]
    if parts:
        element_type = parts[0].element_type
        merged = RowVector(
            element_type,
            [
                np.concatenate([p.columns[i] for p in parts])
                for i in range(len(element_type))
            ],
        )
    else:
        merged = result.per_rank[0]
    return MonolithicJoinResult(matches=merged, cluster_result=result)


def monolithic_radix_join(
    ctx: RankContext,
    left: RowVector,
    right: RowVector,
    key_bits: int,
    network_fanout: int,
    local_fanout: int,
    compression: bool,
) -> RowVector:
    """One rank's share of the monolithic join; returns its match tuples."""
    if network_fanout & (network_fanout - 1) or local_fanout & (local_fanout - 1):
        raise SimulationError("radix fan-outs must be powers of two")
    comm, clock, cost = ctx.comm, ctx.clock, ctx.cost
    fanout_bits = network_fanout.bit_length() - 1
    net_mask = network_fanout - 1
    payload_mask = (1 << key_bits) - 1

    left_keys, left_payloads = _rank_shard(ctx, left)
    right_keys, right_payloads = _rank_shard(ctx, right)

    # -- phase 1: histograms of both relations, one collective --------------
    clock.phase = "local_histogram"
    left_hist = np.bincount(left_keys & net_mask, minlength=network_fanout)
    right_hist = np.bincount(right_keys & net_mask, minlength=network_fanout)
    clock.advance(
        cost.cpu_cost("histogram", len(left_keys) + len(right_keys)), jitter=True
    )
    clock.phase = "global_histogram"
    both = np.concatenate([left_hist, right_hist]).astype(np.int64)
    global_both = comm.allreduce(both, op="sum")
    matrix_both = np.stack(comm.allgather(both, payload_bytes=both.nbytes))
    left_global = global_both[:network_fanout]
    right_global = global_both[network_fanout:]
    left_matrix = matrix_both[:, :network_fanout]
    right_matrix = matrix_both[:, network_fanout:]

    # -- phase 2: network partitioning with compression ----------------------
    clock.phase = "network_partition"
    wire_type = _PACKED_TYPE if compression else left.element_type
    left_window = comm.win_create(
        wire_type if compression else left.element_type,
        _owned_rows(left_global, comm.rank, comm.n_ranks),
    )
    right_window = comm.win_create(
        wire_type if compression else right.element_type,
        _owned_rows(right_global, comm.rank, comm.n_ranks),
    )
    _scatter_to_windows(
        ctx, left_window, left_keys, left_payloads, left.element_type,
        left_matrix, net_mask, key_bits, fanout_bits, compression,
    )
    _scatter_to_windows(
        ctx, right_window, right_keys, right_payloads, right.element_type,
        right_matrix, net_mask, key_bits, fanout_bits, compression,
    )
    clock.phase = "network_partition"
    left_window.fence()
    right_window.fence()

    # -- phases 3+4: local partitioning, build, and probe ---------------------
    out_key_parts: list[np.ndarray] = []
    out_left_parts: list[np.ndarray] = []
    out_right_parts: list[np.ndarray] = []
    for pid in range(comm.rank, network_fanout, comm.n_ranks):
        lk, lp = _read_partition(
            left_window, left_matrix, pid, comm, key_bits, payload_mask,
            fanout_bits, compression,
        )
        rk, rp = _read_partition(
            right_window, right_matrix, pid, comm, key_bits, payload_mask,
            fanout_bits, compression,
        )
        _join_partition(
            ctx, pid, lk, lp, rk, rp, local_fanout, fanout_bits,
            out_key_parts, out_left_parts, out_right_parts, compression,
        )

    clock.phase = "materialize"
    left_payload_name = _payload_name(left.element_type)
    right_payload_name = _payload_name(right.element_type)
    out_type = TupleType.of(
        key=INT64, **{left_payload_name: INT64, right_payload_name: INT64}
    )
    if out_key_parts:
        columns = [
            np.concatenate(out_key_parts),
            np.concatenate(out_left_parts),
            np.concatenate(out_right_parts),
        ]
        matches = RowVector(out_type, columns)
    else:
        matches = RowVector.empty(out_type)
    clock.advance(cost.materialize_cost(matches.size_bytes()), jitter=True)
    return matches


# -- helpers -------------------------------------------------------------------


def _payload_name(element_type: TupleType) -> str:
    names = [f for f in element_type.field_names if f != "key"]
    if len(names) != 1:
        raise SimulationError(
            f"monolithic join expects ⟨key, payload⟩ relations, got {element_type!r}"
        )
    return names[0]


def _rank_shard(ctx: RankContext, table: RowVector) -> tuple[np.ndarray, np.ndarray]:
    base, extra = divmod(len(table), ctx.n_ranks)
    start = ctx.rank * base + min(ctx.rank, extra)
    stop = start + base + (1 if ctx.rank < extra else 0)
    keys = table.column("key")[start:stop]
    payloads = table.column(_payload_name(table.element_type))[start:stop]
    ctx.clock.phase = "local_histogram"
    ctx.clock.advance(ctx.cost.cpu_cost("scan", stop - start), jitter=True)
    return keys, payloads


def _owned_rows(global_hist: np.ndarray, rank: int, n_ranks: int) -> int:
    return int(global_hist[rank::n_ranks].sum())


def _partition_bases(
    matrix: np.ndarray, target: int, n_ranks: int
) -> dict[int, int]:
    bases: dict[int, int] = {}
    cursor = 0
    totals = matrix.sum(axis=0)
    for pid in range(target, matrix.shape[1], n_ranks):
        bases[pid] = cursor
        cursor += int(totals[pid])
    return bases


def _scatter_to_windows(
    ctx: RankContext,
    windows,
    keys: np.ndarray,
    payloads: np.ndarray,
    element_type: TupleType,
    matrix: np.ndarray,
    net_mask: int,
    key_bits: int,
    fanout_bits: int,
    compression: bool,
) -> None:
    """Radix-partition one relation and put it into the remote windows."""
    comm, clock, cost = ctx.comm, ctx.clock, ctx.cost
    clock.phase = "network_partition"
    # The partitioning pass reads the input again (paper §4.1.1).
    clock.advance(cost.cpu_cost("scan", len(keys)), jitter=True)
    pids = keys & net_mask
    order = np.argsort(pids, kind="stable")
    counts = np.bincount(pids, minlength=matrix.shape[1])
    offsets = np.concatenate(([0], np.cumsum(counts)))
    clock.advance(cost.cpu_cost("partition", len(keys)), jitter=True)
    my_prefix = matrix[: comm.rank].sum(axis=0)
    for pid in np.flatnonzero(counts):
        pid = int(pid)
        idx = order[offsets[pid] : offsets[pid + 1]]
        if compression:
            packed = ((keys[idx] >> fanout_bits) << key_bits) | payloads[idx]
            clock.advance(cost.cpu_cost("map", len(idx)), jitter=True)
            rows = RowVector(_PACKED_TYPE, [packed.astype(np.int64)])
        else:
            rows = RowVector(element_type, [keys[idx], payloads[idx]])
        target = pid % comm.n_ranks
        base = _partition_bases(matrix, target, comm.n_ranks)[pid] + int(my_prefix[pid])
        for start in range(0, len(rows), _PUT_CHUNK_ROWS):
            chunk = rows.slice(start, min(start + _PUT_CHUNK_ROWS, len(rows)))
            windows.put(target, base + start, chunk)


def _read_partition(
    windows,
    matrix: np.ndarray,
    pid: int,
    comm,
    key_bits: int,
    payload_mask: int,
    fanout_bits: int,
    compression: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Read one owned network partition back out of the local window."""
    bases = _partition_bases(matrix, comm.rank, comm.n_ranks)
    size = int(matrix.sum(axis=0)[pid])
    data = windows.local.read(bases[pid], bases[pid] + size)
    if compression:
        packed = data.column("packed")
        return packed >> key_bits, packed & payload_mask  # still compressed keys
    return data.columns[0], data.columns[1]


def _join_partition(
    ctx: RankContext,
    pid: int,
    left_keys: np.ndarray,
    left_payloads: np.ndarray,
    right_keys: np.ndarray,
    right_payloads: np.ndarray,
    local_fanout: int,
    fanout_bits: int,
    out_keys: list[np.ndarray],
    out_left: list[np.ndarray],
    out_right: list[np.ndarray],
    compression: bool,
) -> None:
    """Second partitioning pass plus hash build/probe of one partition pair."""
    clock, cost = ctx.clock, ctx.cost
    local_mask = local_fanout - 1
    # With compression the network bits are already dropped from the key;
    # without, they are the low bits and must be skipped.
    shift = 0 if compression else fanout_bits

    clock.phase = "local_partition"
    # Two passes over the received partition: histogram, then scatter.
    clock.advance(
        cost.cpu_cost("scan", 2 * (len(left_keys) + len(right_keys))), jitter=True
    )
    lsub = (left_keys >> shift) & local_mask
    rsub = (right_keys >> shift) & local_mask
    clock.advance(
        cost.cpu_cost("histogram", len(left_keys) + len(right_keys)), jitter=True
    )
    lorder = np.argsort(lsub, kind="stable")
    rorder = np.argsort(rsub, kind="stable")
    lcounts = np.bincount(lsub, minlength=local_fanout)
    rcounts = np.bincount(rsub, minlength=local_fanout)
    loffsets = np.concatenate(([0], np.cumsum(lcounts)))
    roffsets = np.concatenate(([0], np.cumsum(rcounts)))
    clock.advance(
        cost.cpu_cost("partition", len(left_keys) + len(right_keys)), jitter=True
    )
    clock.advance(
        cost.copy_cost(16 * (len(left_keys) + len(right_keys))), jitter=True
    )

    clock.phase = "build_probe"
    # One pass over each side to feed the hash build and the probe.
    clock.advance(
        cost.cpu_cost("scan", len(left_keys) + len(right_keys)), jitter=True
    )
    for sub in range(local_fanout):
        li = lorder[loffsets[sub] : loffsets[sub + 1]]
        ri = rorder[roffsets[sub] : roffsets[sub + 1]]
        if len(li) == 0 or len(ri) == 0:
            clock.advance(cost.cpu_cost("build", len(li)), jitter=True)
            clock.advance(cost.cpu_cost("probe", len(ri)), jitter=True)
            continue
        bk = left_keys[li]
        border = np.argsort(bk, kind="stable")
        bk_sorted = bk[border]
        pk = right_keys[ri]
        lo = np.searchsorted(bk_sorted, pk, side="left")
        hi = np.searchsorted(bk_sorted, pk, side="right")
        match_counts = hi - lo
        emitted = int(match_counts.sum())
        clock.advance(cost.cpu_cost("build", len(li)), jitter=True)
        clock.advance(cost.cpu_cost("probe", len(ri) + emitted), jitter=True)
        if emitted == 0:
            continue
        probe_idx = np.repeat(np.arange(len(ri)), match_counts)
        run_offsets = np.repeat(hi - np.cumsum(match_counts), match_counts)
        build_idx = border[np.arange(emitted) + run_offsets]
        keys = pk[probe_idx]
        if compression:
            keys = (keys << fanout_bits) | pid  # recover the dropped bits
            clock.advance(cost.cpu_cost("map", emitted), jitter=True)
        out_keys.append(keys)
        out_left.append(left_payloads[li][build_idx])
        out_right.append(right_payloads[ri][probe_idx])


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
