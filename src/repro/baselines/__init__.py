"""Baselines: the monolithic RDMA operators and the engine models."""

from repro.baselines.engine_base import EngineModel, EngineProfile, EngineRun
from repro.baselines.memsql_sim import MEMSQL_PROFILE, MemSqlModel
from repro.baselines.monolithic_groupby import (
    MonolithicGroupByResult,
    run_monolithic_groupby,
)
from repro.baselines.monolithic_join import (
    MonolithicJoinResult,
    monolithic_radix_join,
    run_monolithic_join,
)
from repro.baselines.presto_sim import PRESTO_PROFILE, PrestoModel

__all__ = [
    "EngineModel",
    "EngineProfile",
    "EngineRun",
    "MEMSQL_PROFILE",
    "MemSqlModel",
    "MonolithicGroupByResult",
    "run_monolithic_groupby",
    "MonolithicJoinResult",
    "monolithic_radix_join",
    "run_monolithic_join",
    "PRESTO_PROFILE",
    "PrestoModel",
]
