"""MemSQL engine model (Figure 9 comparator).

MemSQL in the paper's setup is "a distributed, relational SQL database that
compiles SQL into machine code", deployed as one master aggregator plus
7 leaf nodes, all data in memory.  The model captures why it is on par
with Modularis on queries 4 and 12 but 25–33 % faster on 14 and 19:

* compiled kernels at hand-tuned per-row rates (no sub-operator
  abstraction overhead) over in-memory columns;
* mature exchange machinery with pre-established connections and
  pre-registered buffers — a much smaller fixed cost per query than
  Modularis' per-query RMA window registration and per-upstream collective
  epochs.  On the highly selective queries (14, 19) that fixed cost is a
  visible fraction of the runtime, which is exactly where MemSQL wins;
  on the bulkier joins (4, 12) both systems are throughput-bound and par.
"""

from __future__ import annotations

from repro.baselines.engine_base import EngineModel, EngineProfile

__all__ = ["MEMSQL_PROFILE", "MemSqlModel"]

MEMSQL_PROFILE = EngineProfile(
    name="memsql",
    n_workers=7,  # one node is the master aggregator
    query_overhead=380.0e-6,  # aggregator round-trips, plan dispatch
    stage_overhead=15.0e-6,
    cpu_row=1.4e-9,  # compiled, vectorized kernels
    cpu_join_row=4.5e-9,
    cpu_agg_row=1.5e-9,
    scan_bandwidth=28.0e9,  # in-memory columnstore scan
    scan_row_decode=0.0,
    exchange_bandwidth=2.2e9,
    exchange_row_cost=12.0e-9,
    skew=1.05,
)


class MemSqlModel(EngineModel):
    """MemSQL with the calibrated profile above."""

    def __init__(self) -> None:
        super().__init__(MEMSQL_PROFILE)
