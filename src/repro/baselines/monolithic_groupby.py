"""A monolithic distributed GROUP BY on the simulated MPI substrate.

The paper has no published monolithic counterpart for its distributed
GROUP BY (that is part of its point: nobody extends the hand-tuned join
codebases to aggregation).  This imperative implementation — the obvious
adaptation of the monolithic join's phases with the build/probe replaced
by a hash aggregation — serves as the ablation baseline for the Figure 7
plan and as an independent correctness oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.mpi.cluster import ClusterResult, RankContext, SimCluster
from repro.types.atoms import INT64
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["MonolithicGroupByResult", "run_monolithic_groupby"]

_KV_TYPE = TupleType.of(key=INT64, value=INT64)
_PACKED_TYPE = TupleType.of(packed=INT64)
_PUT_CHUNK_ROWS = 1 << 15


@dataclass
class MonolithicGroupByResult:
    """Aggregated groups plus timing evidence."""

    groups: RowVector
    cluster_result: ClusterResult

    @property
    def seconds(self) -> float:
        return self.cluster_result.makespan

    def phase_breakdown(self) -> dict[str, float]:
        return self.cluster_result.phase_breakdown()


def run_monolithic_groupby(
    cluster: SimCluster,
    table: RowVector,
    key_bits: int = 27,
    network_fanout: int | None = None,
    compression: bool = True,
) -> MonolithicGroupByResult:
    """Sum ``value`` per ``key`` across the cluster; gather the result."""
    n_net = network_fanout or _next_power_of_two(cluster.n_ranks)
    result = cluster.run(
        lambda ctx: _rank_groupby(ctx, table, key_bits, n_net, compression)
    )
    parts = [p for p in result.per_rank if len(p)]
    if parts:
        merged = RowVector(
            _KV_TYPE,
            [
                np.concatenate([p.columns[i] for p in parts])
                for i in range(2)
            ],
        )
    else:
        merged = RowVector.empty(_KV_TYPE)
    return MonolithicGroupByResult(groups=merged, cluster_result=result)


def _rank_groupby(
    ctx: RankContext,
    table: RowVector,
    key_bits: int,
    n_net: int,
    compression: bool,
) -> RowVector:
    if n_net & (n_net - 1):
        raise SimulationError("network fan-out must be a power of two")
    comm, clock, cost = ctx.comm, ctx.clock, ctx.cost
    fanout_bits = n_net.bit_length() - 1
    net_mask = n_net - 1
    payload_mask = (1 << key_bits) - 1

    base, extra = divmod(len(table), ctx.n_ranks)
    start = ctx.rank * base + min(ctx.rank, extra)
    stop = start + base + (1 if ctx.rank < extra else 0)
    keys = table.column("key")[start:stop]
    values = table.column("value")[start:stop]

    clock.phase = "local_histogram"
    clock.advance(cost.cpu_cost("scan", len(keys)), jitter=True)
    hist = np.bincount(keys & net_mask, minlength=n_net).astype(np.int64)
    clock.advance(cost.cpu_cost("histogram", len(keys)), jitter=True)

    clock.phase = "global_histogram"
    global_hist = comm.allreduce(hist, op="sum")
    matrix = np.stack(comm.allgather(hist, payload_bytes=hist.nbytes))

    clock.phase = "network_partition"
    clock.advance(cost.cpu_cost("scan", len(keys)), jitter=True)
    owned = int(global_hist[comm.rank::comm.n_ranks].sum())
    wire_type = _PACKED_TYPE if compression else _KV_TYPE
    windows = comm.win_create(wire_type, owned)
    pids = keys & net_mask
    order = np.argsort(pids, kind="stable")
    counts = np.bincount(pids, minlength=n_net)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    clock.advance(cost.cpu_cost("partition", len(keys)), jitter=True)
    my_prefix = matrix[: comm.rank].sum(axis=0)
    totals = matrix.sum(axis=0)
    for pid in np.flatnonzero(counts):
        pid = int(pid)
        idx = order[offsets[pid] : offsets[pid + 1]]
        if compression:
            packed = ((keys[idx] >> fanout_bits) << key_bits) | values[idx]
            clock.advance(cost.cpu_cost("map", len(idx)), jitter=True)
            rows = RowVector(_PACKED_TYPE, [packed.astype(np.int64)])
        else:
            rows = RowVector(_KV_TYPE, [keys[idx], values[idx]])
        target = pid % comm.n_ranks
        cursor = 0
        bases: dict[int, int] = {}
        for owned_pid in range(target, n_net, comm.n_ranks):
            bases[owned_pid] = cursor
            cursor += int(totals[owned_pid])
        write_base = bases[pid] + int(my_prefix[pid])
        for chunk_start in range(0, len(rows), _PUT_CHUNK_ROWS):
            chunk = rows.slice(chunk_start, min(chunk_start + _PUT_CHUNK_ROWS, len(rows)))
            windows.put(target, write_base + chunk_start, chunk)
    windows.fence()

    clock.phase = "aggregation"
    data = windows.local.read(0, owned)
    if compression:
        packed = data.column("packed")
        # Recover the partition id of each row from the window layout.
        restored_keys = np.empty(owned, dtype=np.int64)
        restored_values = packed & payload_mask
        cursor = 0
        for pid in range(comm.rank, n_net, comm.n_ranks):
            size = int(totals[pid])
            chunk = packed[cursor : cursor + size]
            restored_keys[cursor : cursor + size] = (
                (chunk >> key_bits) << fanout_bits
            ) | pid
            cursor += size
        clock.advance(cost.cpu_cost("map", owned), jitter=True)
    else:
        restored_keys = data.column("key")
        restored_values = data.column("value")
    clock.advance(cost.cpu_cost("reduce", owned), jitter=True)
    if owned:
        sort = np.argsort(restored_keys, kind="stable")
        sorted_keys = restored_keys[sort]
        bounds = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        out_keys = sorted_keys[bounds]
        out_values = np.add.reduceat(restored_values[sort], bounds)
    else:
        out_keys = np.empty(0, dtype=np.int64)
        out_values = np.empty(0, dtype=np.int64)

    clock.phase = "materialize"
    groups = RowVector(_KV_TYPE, [out_keys, out_values])
    clock.advance(cost.materialize_cost(groups.size_bytes()), jitter=True)
    return groups


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power
