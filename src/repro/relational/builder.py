"""Fluent query-building DSL over the logical algebra.

The paper's front end is "a UDF-based library interface written in Python";
this builder is the equivalent surface::

    q = (scan("lineitem")
         .filter(col("l_shipdate").between(d0, d1))
         .join(scan("part"), on="p_partkey", kind="inner")
         .aggregate(group_by=[], aggs=[("sum", revenue, "total")]))
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import PlanError
from repro.relational.expressions import Expression
from repro.relational.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
)

__all__ = ["Query", "scan"]


class Query:
    """An immutable wrapper around a logical plan with chaining methods."""

    __slots__ = ("plan",)

    def __init__(self, plan: LogicalPlan) -> None:
        self.plan = plan

    def filter(self, predicate: Expression) -> "Query":
        """Keep rows satisfying ``predicate``."""
        return Query(FilterNode(self.plan, predicate))

    def project(self, outputs: Mapping[str, Expression]) -> "Query":
        """Compute named output columns."""
        if not outputs:
            raise PlanError("projection needs at least one output column")
        return Query(ProjectNode.of(self.plan, outputs))

    def join(self, other: "Query", on: str, kind: str = "inner") -> "Query":
        """Equi-join with another query on a same-named key column.

        For ``semi``/``anti``, *this* query is the build side whose matches
        qualify (or disqualify) the rows of ``other``.
        """
        return Query(JoinNode(self.plan, other.plan, key=on, kind=kind))

    def aggregate(
        self,
        group_by: Sequence[str],
        aggs: Sequence[tuple[str, Expression, str]],
    ) -> "Query":
        """Group by columns and compute ``(func, expr, alias)`` aggregates."""
        specs = tuple(AggregateSpec(func, expr, alias) for func, expr, alias in aggs)
        return Query(AggregateNode(self.plan, tuple(group_by), specs))

    def order_by(
        self, *keys: str, descending: bool | Sequence[bool] = False
    ) -> "Query":
        """Order the final result by columns (driver-side).

        ``descending`` may be a single flag or one flag per key.
        """
        if not isinstance(descending, bool):
            descending = tuple(descending)
        return Query(SortNode(self.plan, tuple(keys), descending))

    def limit(self, n: int) -> "Query":
        """Keep the first ``n`` result rows (driver-side)."""
        return Query(LimitNode(self.plan, n))

    def explain(
        self,
        analyze: bool = False,
        catalog=None,
        cluster=None,
        machines: int = 2,
        mode: str = "fused",
        join_strategy: str = "exchange",
    ) -> str:
        """The logical plan as text; with ``analyze=True``, run it too.

        ``EXPLAIN ANALYZE``: lowers the query onto ``cluster`` (or a fresh
        ``machines``-rank simulated cluster), executes it with the
        per-operator profiler on, and appends the annotated physical plan
        tree — measured rows, batches, self-time, and max-over-ranks time
        per sub-operator.  Requires ``catalog``; the plain logical explain
        does not.
        """
        text = self.plan.explain()
        if not analyze:
            return text
        if catalog is None:
            raise PlanError("explain(analyze=True) needs a catalog to run against")
        from repro.mpi.cluster import SimCluster
        from repro.relational.optimizer.planner import lower_to_modularis

        if cluster is None:
            cluster = SimCluster(machines)
        lowered = lower_to_modularis(
            self.plan, catalog, cluster, join_strategy=join_strategy
        )
        from repro.core.options import RunOptions

        report = lowered.run(catalog, RunOptions(mode=mode, profile=True))
        return "\n".join((text, "", report.profile.render()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query(\n{self.plan.explain()}\n)"


def scan(table: str, columns: Sequence[str] | None = None) -> Query:
    """Start a query from a base table."""
    return Query(ScanNode(table, tuple(columns) if columns else None))
