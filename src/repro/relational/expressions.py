"""Scalar expression language for the relational frontend.

Expressions evaluate over columnar batches (dicts of numpy arrays), which
is what both the reference interpreter and the engine models execute, and
they can be lowered to :class:`~repro.core.functions.Predicate` /
:class:`~repro.core.functions.TupleFunction` objects for the Modularis
sub-operator plans — the reproduction's analogue of the paper's UDF
compilation through Numba.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.errors import TypeCheckError

__all__ = [
    "Expression",
    "col",
    "lit",
    "Column",
    "Literal",
    "days_from_date",
    "infer_atom_type",
]

_EPOCH_DAYS_IN_YEAR = 365.2425


def days_from_date(text: str) -> int:
    """Days since 1970-01-01 for an ISO ``YYYY-MM-DD`` date string.

    The storage layer keeps dates as INT64 day counts; this is the only
    date parsing the library needs.
    """
    return int(np.datetime64(text, "D").astype(np.int64))


class Expression:
    """Base class; composes through operator overloading.

    ``evaluate`` receives a mapping from column names to numpy arrays and
    returns a numpy array (or scalar broadcastable against them).
    """

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def references(self) -> set[str]:
        """Names of the columns this expression reads."""
        raise NotImplementedError

    # -- comparison -------------------------------------------------------------

    def __eq__(self, other: object) -> "Expression":  # type: ignore[override]
        return BinaryOp("==", self, _wrap(other))

    def __ne__(self, other: object) -> "Expression":  # type: ignore[override]
        return BinaryOp("!=", self, _wrap(other))

    def __lt__(self, other: object) -> "Expression":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: object) -> "Expression":
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other: object) -> "Expression":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: object) -> "Expression":
        return BinaryOp(">=", self, _wrap(other))

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: object) -> "Expression":
        return BinaryOp("+", self, _wrap(other))

    def __radd__(self, other: object) -> "Expression":
        return BinaryOp("+", _wrap(other), self)

    def __sub__(self, other: object) -> "Expression":
        return BinaryOp("-", self, _wrap(other))

    def __rsub__(self, other: object) -> "Expression":
        return BinaryOp("-", _wrap(other), self)

    def __mul__(self, other: object) -> "Expression":
        return BinaryOp("*", self, _wrap(other))

    def __rmul__(self, other: object) -> "Expression":
        return BinaryOp("*", _wrap(other), self)

    def __truediv__(self, other: object) -> "Expression":
        return BinaryOp("/", self, _wrap(other))

    def __rtruediv__(self, other: object) -> "Expression":
        return BinaryOp("/", _wrap(other), self)

    # -- boolean connectives -------------------------------------------------------

    def __and__(self, other: object) -> "Expression":
        return BinaryOp("&", self, _wrap(other))

    def __or__(self, other: object) -> "Expression":
        return BinaryOp("|", self, _wrap(other))

    def __invert__(self) -> "Expression":
        return UnaryOp("~", self)

    # -- SQL-ish helpers --------------------------------------------------------------

    def isin(self, values: Iterable[object]) -> "Expression":
        return IsIn(self, tuple(values))

    def between(self, low: object, high: object) -> "Expression":
        """Inclusive range check, like SQL BETWEEN."""
        return (self >= _wrap(low)) & (self <= _wrap(high))

    def startswith(self, prefix: str) -> "Expression":
        return StartsWith(self, prefix)

    def __hash__(self) -> int:  # needed because __eq__ builds expressions
        return id(self)

    def __bool__(self) -> bool:
        raise TypeCheckError(
            "expressions are symbolic; use & | ~ instead of and/or/not"
        )


def _wrap(value: object) -> Expression:
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Column(Expression):
    """A reference to a named input column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        try:
            return columns[self.name]
        except KeyError:
            raise TypeCheckError(
                f"unknown column {self.name!r}; have {sorted(columns)}"
            ) from None

    def references(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant."""

    def __init__(self, value: object) -> None:
        self.value = value

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return self.value  # broadcasts

    def references(self) -> set[str]:
        return set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"lit({self.value!r})"


_BINARY: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
}


class BinaryOp(Expression):
    """A binary arithmetic/comparison/boolean node."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _BINARY:
            raise TypeCheckError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return _BINARY[self.op](self.left.evaluate(columns), self.right.evaluate(columns))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    """Unary negation (boolean NOT)."""

    def __init__(self, op: str, operand: Expression) -> None:
        if op != "~":
            raise TypeCheckError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~np.asarray(self.operand.evaluate(columns))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"~{self.operand!r}"


class IsIn(Expression):
    """SQL ``IN`` over a literal value set."""

    def __init__(self, operand: Expression, values: tuple) -> None:
        self.operand = operand
        self.values = values

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        data = np.asarray(self.operand.evaluate(columns))
        return np.isin(data, np.asarray(self.values, dtype=data.dtype))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.operand!r}.isin({list(self.values)!r})"


class StartsWith(Expression):
    """SQL ``LIKE 'prefix%'`` over a string column."""

    def __init__(self, operand: Expression, prefix: str) -> None:
        self.operand = operand
        self.prefix = prefix

    def evaluate(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        data = np.asarray(self.operand.evaluate(columns), dtype=str)
        return np.char.startswith(data, self.prefix)

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.operand!r}.startswith({self.prefix!r})"


def substitute_columns(expr: Expression, mapping: Mapping[str, Expression]) -> Expression:
    """Replace column references per ``mapping`` (used to push filters
    through projections: a predicate over projection aliases becomes a
    predicate over the projection's input columns)."""
    if isinstance(expr, Column):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute_columns(expr.operand, mapping))
    if isinstance(expr, IsIn):
        return IsIn(substitute_columns(expr.operand, mapping), expr.values)
    if isinstance(expr, StartsWith):
        return StartsWith(substitute_columns(expr.operand, mapping), expr.prefix)
    raise TypeCheckError(f"cannot substitute into {expr!r}")


def infer_atom_type(expr: Expression, schema: "TupleType") -> "AtomType":
    """The atom type an expression produces over inputs typed by ``schema``.

    Promotion rules: comparisons and boolean connectives over booleans give
    BOOL; arithmetic promotes BOOL→INT64 and INT64→FLOAT64 as needed.
    """
    from repro.types.atoms import BOOL, FLOAT64, INT64, STRING

    if isinstance(expr, Column):
        item = schema[expr.name]
        if not isinstance(item, type(INT64)):
            raise TypeCheckError(f"column {expr.name!r} is not an atom")
        return item
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return BOOL
        if isinstance(expr.value, int):
            return INT64
        if isinstance(expr.value, float):
            return FLOAT64
        if isinstance(expr.value, str):
            return STRING
        raise TypeCheckError(f"cannot type literal {expr.value!r}")
    if isinstance(expr, (IsIn, StartsWith)):
        return BOOL
    if isinstance(expr, UnaryOp):
        return BOOL
    if isinstance(expr, BinaryOp):
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return BOOL
        left = infer_atom_type(expr.left, schema)
        right = infer_atom_type(expr.right, schema)
        if expr.op in ("&", "|"):
            return BOOL if left == BOOL and right == BOOL else INT64
        if expr.op == "/" or FLOAT64 in (left, right):
            return FLOAT64
        return INT64
    raise TypeCheckError(f"cannot infer type of {expr!r}")


def col(name: str) -> Column:
    """Reference a column by name."""
    return Column(name)


def lit(value: object) -> Literal:
    """Embed a constant in an expression."""
    return Literal(value)
