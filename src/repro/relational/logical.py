"""Logical relational algebra: the intermediate plan representation.

The paper's front end translates user queries into "an intermediate plan
representation, which can be illustrated as a DAG of operators", optimizes
it (projection push-downs, data-parallel transformation), and lowers it to
sub-operator plans (§3.4).  These classes are that intermediate layer; the
optimizer passes live in :mod:`repro.relational.optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PlanError
from repro.relational.expressions import Expression

__all__ = [
    "LogicalPlan",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "JoinNode",
    "AggregateNode",
    "AggregateSpec",
    "SortNode",
    "LimitNode",
]

JOIN_KINDS = ("inner", "semi", "anti")
AGG_FUNCS = ("sum", "count", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One output aggregate: ``func(expr) AS alias``.

    ``count`` ignores the expression (``COUNT(*)``); pass any expression.
    """

    func: str
    expr: Expression
    alias: str

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise PlanError(f"unknown aggregate {self.func!r}; have {AGG_FUNCS}")


class LogicalPlan:
    """Base class of logical nodes."""

    @property
    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self.describe()]
        for child in self.children:
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class ScanNode(LogicalPlan):
    """Read a base table from the catalog."""

    table: str
    #: Columns to read; None means all (the optimizer prunes this).
    columns: tuple[str, ...] | None = None

    def describe(self) -> str:
        cols = "*" if self.columns is None else ", ".join(self.columns)
        return f"Scan {self.table} [{cols}]"


@dataclass(frozen=True)
class FilterNode(LogicalPlan):
    """Keep rows satisfying a boolean expression."""

    child: LogicalPlan
    predicate: Expression

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {self.predicate!r}"


@dataclass(frozen=True)
class ProjectNode(LogicalPlan):
    """Compute named output columns from expressions."""

    child: LogicalPlan
    #: alias -> expression, in output order.
    outputs: tuple[tuple[str, Expression], ...]

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    @classmethod
    def of(cls, child: LogicalPlan, outputs: Mapping[str, Expression]) -> "ProjectNode":
        return cls(child, tuple(outputs.items()))

    def describe(self) -> str:
        names = ", ".join(alias for alias, _ in self.outputs)
        return f"Project [{names}]"


@dataclass(frozen=True)
class JoinNode(LogicalPlan):
    """Equi-join of two inputs on same-named key columns.

    ``semi``/``anti`` keep *right* rows with/without a left match, matching
    the BuildProbe convention (left side builds).
    """

    left: LogicalPlan
    right: LogicalPlan
    key: str
    kind: str = "inner"

    def __post_init__(self) -> None:
        if self.kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {self.kind!r}; have {JOIN_KINDS}")

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Join[{self.kind}] on {self.key}"


@dataclass(frozen=True)
class AggregateNode(LogicalPlan):
    """Grouped (or, with no keys, scalar) aggregation."""

    child: LogicalPlan
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise PlanError("aggregation needs at least one aggregate")

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(self.group_by) or "<scalar>"
        aggs = ", ".join(f"{a.func}({a.expr!r}) as {a.alias}" for a in self.aggregates)
        return f"Aggregate by [{keys}]: {aggs}"


@dataclass(frozen=True)
class SortNode(LogicalPlan):
    """Order the result by columns (driver-side post-processing).

    ``descending`` is either one flag for all keys or one flag per key
    (e.g. TPC-H Q3 orders by ``revenue desc, o_orderdate asc``).
    """

    child: LogicalPlan
    keys: tuple[str, ...]
    descending: bool | tuple[bool, ...] = False

    def __post_init__(self) -> None:
        if not self.keys:
            raise PlanError("ORDER BY needs at least one column")
        if not isinstance(self.descending, bool) and len(self.descending) != len(
            self.keys
        ):
            raise PlanError("per-key sort directions must match the keys")

    def directions(self) -> tuple[bool, ...]:
        if isinstance(self.descending, bool):
            return (self.descending,) * len(self.keys)
        return self.descending

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        parts = [
            f"{key} {'desc' if desc else 'asc'}"
            for key, desc in zip(self.keys, self.directions())
        ]
        return f"Sort [{', '.join(parts)}]"


@dataclass(frozen=True)
class LimitNode(LogicalPlan):
    """Keep the first N result rows (driver-side post-processing)."""

    child: LogicalPlan
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise PlanError(f"LIMIT must be non-negative, got {self.n}")

    @property
    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.n}"
