"""Relational frontend: expressions, logical algebra, DSL, and optimizer."""

from repro.relational.builder import Query, scan
from repro.relational.expressions import (
    Expression,
    col,
    days_from_date,
    infer_atom_type,
    lit,
)
from repro.relational.interpreter import Frame, run_logical_plan
from repro.relational.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
)
from repro.relational.optimizer import ModularisQuery, lower_to_modularis, optimize

__all__ = [
    "Query",
    "scan",
    "Expression",
    "col",
    "days_from_date",
    "infer_atom_type",
    "lit",
    "Frame",
    "run_logical_plan",
    "AggregateNode",
    "AggregateSpec",
    "FilterNode",
    "JoinNode",
    "LogicalPlan",
    "ProjectNode",
    "ScanNode",
    "ModularisQuery",
    "lower_to_modularis",
    "optimize",
]
