"""Reference interpreter for logical plans.

Executes a logical plan directly over numpy columns, with no distribution
and no cost accounting.  It serves two purposes:

* the *ground truth* that every Modularis plan (and both engine models) is
  checked against in the test suite;
* the shared execution core of the Presto/MemSQL engine models, which
  compute real results through :func:`join_frames` and
  :func:`aggregate_frame` while charging their own cost models.

Columnar frames are plain ``dict[str, np.ndarray]``; helper
:class:`Frame` adds the row count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import PlanError
from repro.relational.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.storage.catalog import Catalog

__all__ = ["Frame", "run_logical_plan", "join_frames", "aggregate_frame"]


@dataclass
class Frame:
    """A columnar intermediate result."""

    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {len(a) for a in self.columns.values()}
        if len(lengths) > 1:
            raise PlanError(f"ragged frame: column lengths {sorted(lengths)}")

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values()))) if self.columns else 0

    def take(self, indices: np.ndarray) -> "Frame":
        return Frame({k: v[indices] for k, v in self.columns.items()})

    def mask(self, keep: np.ndarray) -> "Frame":
        return self.take(np.flatnonzero(keep))


def run_logical_plan(plan: LogicalPlan, catalog: Catalog) -> Frame:
    """Evaluate a logical plan bottom-up; returns the result frame."""
    if isinstance(plan, ScanNode):
        table = catalog.get(plan.table)
        names = plan.columns or table.schema.field_names
        return Frame({name: table.data.column(name) for name in names})
    if isinstance(plan, FilterNode):
        frame = run_logical_plan(plan.child, catalog)
        keep = np.asarray(plan.predicate.evaluate(frame.columns), dtype=bool)
        return frame.mask(keep)
    if isinstance(plan, ProjectNode):
        frame = run_logical_plan(plan.child, catalog)
        return Frame(
            {
                alias: np.asarray(expr.evaluate(frame.columns))
                for alias, expr in plan.outputs
            }
        )
    if isinstance(plan, JoinNode):
        left = run_logical_plan(plan.left, catalog)
        right = run_logical_plan(plan.right, catalog)
        return join_frames(left, right, plan.key, plan.kind)
    if isinstance(plan, AggregateNode):
        frame = run_logical_plan(plan.child, catalog)
        return aggregate_frame(frame, plan.group_by, plan.aggregates)
    if isinstance(plan, SortNode):
        frame = run_logical_plan(plan.child, catalog)
        if frame.n_rows == 0:
            return frame
        key_columns = []
        for key, desc in zip(reversed(plan.keys), reversed(plan.directions())):
            column = frame.columns[key]
            if desc:
                if column.dtype.kind not in "iuf":
                    raise PlanError(
                        f"descending sort key {key!r} must be numeric"
                    )
                column = -column
            key_columns.append(column)
        return frame.take(np.lexsort(key_columns))
    if isinstance(plan, LimitNode):
        frame = run_logical_plan(plan.child, catalog)
        return Frame({k: v[: plan.n] for k, v in frame.columns.items()})
    raise PlanError(f"unknown logical node {type(plan).__name__}")


def join_frames(left: Frame, right: Frame, key: str, kind: str = "inner") -> Frame:
    """Equi-join two frames on a same-named key column.

    ``semi``/``anti`` keep right rows with/without a left match (the
    BuildProbe convention: the left side builds).
    """
    for side, frame in (("left", left), ("right", right)):
        if key not in frame.columns:
            raise PlanError(f"{side} join input lacks key column {key!r}")
    left_keys = left.columns[key]
    right_keys = right.columns[key]

    order = np.argsort(left_keys, kind="stable")
    sorted_keys = left_keys[order]
    lo = np.searchsorted(sorted_keys, right_keys, side="left")
    hi = np.searchsorted(sorted_keys, right_keys, side="right")
    match_counts = hi - lo

    if kind == "semi":
        return right.mask(match_counts > 0)
    if kind == "anti":
        return right.mask(match_counts == 0)
    if kind != "inner":
        raise PlanError(f"unknown join kind {kind!r}")

    emitted = int(match_counts.sum())
    right_idx = np.repeat(np.arange(right.n_rows), match_counts)
    offsets = np.repeat(hi - np.cumsum(match_counts), match_counts)
    left_idx = order[np.arange(emitted) + offsets]
    columns: dict[str, np.ndarray] = {key: right_keys[right_idx]}
    for name, column in left.columns.items():
        if name != key:
            if name in right.columns:
                raise PlanError(f"join sides share non-key column {name!r}")
            columns[name] = column[left_idx]
    for name, column in right.columns.items():
        if name != key:
            columns[name] = column[right_idx]
    return Frame(columns)


def aggregate_frame(
    frame: Frame,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Frame:
    """Grouped (or scalar, with no keys) aggregation of a frame."""
    if not group_by:
        outputs: dict[str, np.ndarray] = {}
        for agg in aggregates:
            outputs[agg.alias] = np.asarray([_scalar_agg(agg.func, agg.expr, frame)])
        return Frame(outputs)

    key_arrays = [np.asarray(frame.columns[k]) for k in group_by]
    order = np.lexsort(key_arrays[::-1])
    sorted_keys = [k[order] for k in key_arrays]
    if frame.n_rows == 0:
        empty = {k: sorted_keys[i][:0] for i, k in enumerate(group_by)}
        for agg in aggregates:
            empty[agg.alias] = np.zeros(0, dtype=np.int64)
        return Frame(empty)
    changed = np.zeros(frame.n_rows, dtype=bool)
    changed[0] = True
    for k in sorted_keys:
        changed[1:] |= k[1:] != k[:-1]
    bounds = np.flatnonzero(changed)

    outputs = {name: sorted_keys[i][bounds] for i, name in enumerate(group_by)}
    for agg in aggregates:
        values = _agg_input(agg.func, agg.expr, frame)[order]
        if agg.func in ("sum", "count"):
            outputs[agg.alias] = np.add.reduceat(values, bounds)
        elif agg.func == "min":
            outputs[agg.alias] = np.minimum.reduceat(values, bounds)
        else:
            outputs[agg.alias] = np.maximum.reduceat(values, bounds)
    return Frame(outputs)


def _agg_input(func: str, expr, frame: Frame) -> np.ndarray:
    if func == "count":
        return np.ones(frame.n_rows, dtype=np.int64)
    values = np.asarray(expr.evaluate(frame.columns))
    if values.ndim == 0:
        values = np.full(frame.n_rows, values)
    if values.dtype == bool:
        values = values.astype(np.int64)
    return values


def _scalar_agg(func: str, expr, frame: Frame) -> object:
    values = _agg_input(func, expr, frame)
    if len(values) == 0:
        return 0
    if func in ("sum", "count"):
        return values.sum()
    if func == "min":
        return values.min()
    return values.max()
