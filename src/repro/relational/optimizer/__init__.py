"""The simplistic query optimizer: rewrite rules plus physical lowering."""

from repro.relational.optimizer.planner import ModularisQuery, lower_to_modularis
from repro.relational.optimizer.rules import (
    optimize,
    output_columns,
    prune_columns,
    push_filters,
)

__all__ = [
    "ModularisQuery",
    "lower_to_modularis",
    "optimize",
    "output_columns",
    "prune_columns",
    "push_filters",
]
