"""Logical optimization passes (paper §3.4: "a series of optimizations
such as projection push-downs and transformations into data-parallel
plans").

Two classic rewrite rules are implemented on the logical algebra:

* :func:`push_filters` — move filters below joins onto the side whose
  columns they reference, and fold stacked filters into one conjunction;
* :func:`prune_columns` — compute the columns each subtree actually needs
  and narrow every ``Scan`` to exactly those (projection push-down).

The data-parallel transformation itself happens during lowering
(:mod:`repro.relational.optimizer.planner`).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.storage.catalog import Catalog

__all__ = ["output_columns", "push_filters", "prune_columns", "optimize"]


def output_columns(plan: LogicalPlan, catalog: Catalog) -> tuple[str, ...]:
    """The column names a logical subtree produces, in order."""
    if isinstance(plan, ScanNode):
        if plan.columns is not None:
            return plan.columns
        return catalog.get(plan.table).schema.field_names
    if isinstance(plan, FilterNode):
        return output_columns(plan.child, catalog)
    if isinstance(plan, ProjectNode):
        return tuple(alias for alias, _ in plan.outputs)
    if isinstance(plan, JoinNode):
        left = output_columns(plan.left, catalog)
        right = output_columns(plan.right, catalog)
        if plan.kind in ("semi", "anti"):
            return right
        merged = [plan.key]
        merged += [c for c in left if c != plan.key]
        merged += [c for c in right if c != plan.key]
        return tuple(merged)
    if isinstance(plan, AggregateNode):
        return plan.group_by + tuple(a.alias for a in plan.aggregates)
    if isinstance(plan, (SortNode, LimitNode)):
        return output_columns(plan.child, catalog)
    raise PlanError(f"unknown logical node {type(plan).__name__}")


def push_filters(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """Push filters below joins; merge adjacent filters."""
    if isinstance(plan, ScanNode):
        return plan
    if isinstance(plan, FilterNode):
        child = push_filters(plan.child, catalog)
        if isinstance(child, FilterNode):
            return FilterNode(child.child, child.predicate & plan.predicate)
        if isinstance(child, ProjectNode):
            # Rewrite the predicate over the projection's inputs and push it
            # below (safe because Project computes pure expressions).
            from repro.relational.expressions import substitute_columns

            mapping = dict(child.outputs)
            pushed = FilterNode(child.child, substitute_columns(plan.predicate, mapping))
            return ProjectNode(push_filters(pushed, catalog), child.outputs)
        if isinstance(child, JoinNode):
            refs = plan.predicate.references()
            left_cols = set(output_columns(child.left, catalog))
            right_cols = set(output_columns(child.right, catalog))
            if refs <= left_cols:
                return push_filters(
                    JoinNode(
                        FilterNode(child.left, plan.predicate),
                        child.right, child.key, child.kind,
                    ),
                    catalog,
                )
            if refs <= right_cols:
                return push_filters(
                    JoinNode(
                        child.left,
                        FilterNode(child.right, plan.predicate),
                        child.key, child.kind,
                    ),
                    catalog,
                )
        return FilterNode(child, plan.predicate)
    if isinstance(plan, ProjectNode):
        return ProjectNode(push_filters(plan.child, catalog), plan.outputs)
    if isinstance(plan, JoinNode):
        return JoinNode(
            push_filters(plan.left, catalog),
            push_filters(plan.right, catalog),
            plan.key,
            plan.kind,
        )
    if isinstance(plan, AggregateNode):
        return AggregateNode(
            push_filters(plan.child, catalog), plan.group_by, plan.aggregates
        )
    if isinstance(plan, SortNode):
        return SortNode(push_filters(plan.child, catalog), plan.keys, plan.descending)
    if isinstance(plan, LimitNode):
        return LimitNode(push_filters(plan.child, catalog), plan.n)
    raise PlanError(f"unknown logical node {type(plan).__name__}")


def prune_columns(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """Narrow every Scan to the columns its consumers actually use."""
    return _prune(plan, catalog, needed=None)


def _prune(
    plan: LogicalPlan, catalog: Catalog, needed: set[str] | None
) -> LogicalPlan:
    if isinstance(plan, ScanNode):
        available = catalog.get(plan.table).schema.field_names
        if needed is None:
            return plan
        keep = tuple(c for c in available if c in needed)
        if not keep:
            keep = available[:1]  # a table must keep at least one column
        return ScanNode(plan.table, keep)
    if isinstance(plan, FilterNode):
        child_needed = None
        if needed is not None:
            child_needed = set(needed) | plan.predicate.references()
        return FilterNode(_prune(plan.child, catalog, child_needed), plan.predicate)
    if isinstance(plan, ProjectNode):
        outputs = plan.outputs
        if needed is not None:
            outputs = tuple((a, e) for a, e in plan.outputs if a in needed)
            if not outputs:
                outputs = plan.outputs[:1]
        child_needed: set[str] = set()
        for _alias, expr in outputs:
            child_needed |= expr.references()
        return ProjectNode(_prune(plan.child, catalog, child_needed), outputs)
    if isinstance(plan, JoinNode):
        left_cols = set(output_columns(plan.left, catalog))
        right_cols = set(output_columns(plan.right, catalog))
        if needed is None:
            left_needed, right_needed = left_cols, right_cols
        else:
            left_needed = (set(needed) & left_cols) | {plan.key}
            right_needed = (set(needed) & right_cols) | {plan.key}
        return JoinNode(
            _prune(plan.left, catalog, left_needed),
            _prune(plan.right, catalog, right_needed),
            plan.key,
            plan.kind,
        )
    if isinstance(plan, AggregateNode):
        child_needed = set(plan.group_by)
        for agg in plan.aggregates:
            child_needed |= agg.expr.references()
        return AggregateNode(
            _prune(plan.child, catalog, child_needed), plan.group_by, plan.aggregates
        )
    if isinstance(plan, SortNode):
        child_needed = None if needed is None else set(needed) | set(plan.keys)
        return SortNode(
            _prune(plan.child, catalog, child_needed), plan.keys, plan.descending
        )
    if isinstance(plan, LimitNode):
        return LimitNode(_prune(plan.child, catalog, needed), plan.n)
    raise PlanError(f"unknown logical node {type(plan).__name__}")


def optimize(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """The full (simplistic) rewrite pipeline: pushdown, then pruning."""
    return prune_columns(push_filters(plan, catalog), catalog)
