"""Lower logical plans to distributed Modularis sub-operator plans.

This is the paper's "very simplistic query optimizer" (§4.4): it handles
queries following the TPC-H pattern — *a single join on two tables that
were previously filtered, then a projection and post-aggregation of the
join results* — and produces the same plan shape as Figure 3, with the
query's post-processing spliced in at the innermost nesting level and
post-aggregations at every level on the way out (§4.4, "exactly as in the
case of the distributed GROUP BY").

Lowering steps:

1. run the rewrite rules (filter pushdown, projection pruning);
2. pattern-match the plan into two *sides* (scan → filter → payload
   projection), a join kind, an optional residual post-join filter, and an
   aggregation (grouped or scalar) with an optional final projection;
3. emit the physical plan: per rank, each side runs
   ``RowScan → Filter → Map → LocalHistogram → MpiHistogram → MpiExchange``
   (hash partitioning — TPC-H keys are not dense, so no radix compression),
   the sides are zipped and joined through the two nested-map levels, and
   ``ReduceByKey``/``Reduce`` post-aggregations run at every level plus a
   final one on the driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.executor import ExecutionReport, execution_steps
from repro.core.options import UNSET, RunOptions, coerce_options
from repro.core.functions import (
    HashPartition,
    Predicate,
    ReduceFunction,
    TupleFunction,
)
from repro.core.operator import Operator
from repro.core.operators import (
    BuildProbe,
    Filter,
    Limit,
    LocalHistogram,
    LocalSort,
    LocalPartitioning,
    Map,
    MaterializeRowVector,
    MpiExchange,
    MpiExecutor,
    MpiHistogram,
    NestedMap,
    ParameterLookup,
    ParameterSlot,
    Projection,
    Reduce,
    ReduceByKey,
    RowScan,
    Zip,
)
from repro.errors import PlanError
from repro.mpi.cluster import SimCluster
from repro.relational.expressions import Expression, col, infer_atom_type, lit
from repro.relational.interpreter import Frame
from repro.relational.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.relational.optimizer.rules import optimize
from repro.storage.catalog import Catalog
from repro.types.collections import RowVector, row_vector_type
from repro.types.tuples import Field, TupleType

__all__ = ["ModularisQuery", "lower_to_modularis"]


# -- pattern extraction --------------------------------------------------------


@dataclass(frozen=True)
class _Side:
    """One join input: a filtered, projected base-table scan."""

    table: str
    columns: tuple[str, ...]
    predicate: Expression | None
    outputs: tuple[tuple[str, Expression], ...]  # includes the join key


@dataclass(frozen=True)
class _Stage:
    """One additional join applied to the running intermediate result."""

    side: _Side
    key: str
    kind: str


@dataclass(frozen=True)
class _Shape:
    """The query patterns the simplistic optimizer supports: a single join
    of two filtered tables (the paper's TPC-H pattern) or a single-table
    scan-filter-aggregate (the Q1-style extension)."""

    left: _Side
    #: None for single-table aggregation queries (no join).
    right: _Side | None
    key: str
    join_kind: str
    post_filter: Expression | None
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    final_outputs: tuple[tuple[str, Expression], ...] | None
    #: Driver-side ORDER BY / LIMIT post-processing (§3.4).
    order_by: tuple[str, ...] | None = None
    order_descending: bool | tuple[bool, ...] = False
    limit: int | None = None
    #: Left-deep joins beyond the first (extension; the paper's optimizer
    #: handles only the single-join TPC-H pattern).
    extra_stages: tuple[_Stage, ...] = ()


def _extract_side(plan: LogicalPlan, catalog: Catalog, key: str) -> _Side:
    outputs: tuple[tuple[str, Expression], ...] | None = None
    if isinstance(plan, ProjectNode):
        outputs = plan.outputs
        plan = plan.child
    predicate = None
    while isinstance(plan, FilterNode):
        predicate = (
            plan.predicate if predicate is None else plan.predicate & predicate
        )
        plan = plan.child
    if not isinstance(plan, ScanNode):
        raise PlanError(
            "the simplistic optimizer needs each join side to be "
            f"scan → filter* → project?, found {type(plan).__name__}"
        )
    columns = plan.columns or catalog.get(plan.table).schema.field_names
    if outputs is None:
        outputs = tuple((c, col(c)) for c in columns)
    names = [alias for alias, _ in outputs]
    if key not in names:
        raise PlanError(f"join side over {plan.table!r} does not produce key {key!r}")
    return _Side(plan.table, tuple(columns), predicate, outputs)


def _extract_side_any_key(plan: LogicalPlan, catalog: Catalog) -> _Side:
    """Like :func:`_extract_side` but without a join-key requirement."""
    outputs: tuple[tuple[str, Expression], ...] | None = None
    if isinstance(plan, ProjectNode):
        outputs = plan.outputs
        plan = plan.child
    predicate = None
    while isinstance(plan, FilterNode):
        predicate = (
            plan.predicate if predicate is None else plan.predicate & predicate
        )
        plan = plan.child
    if not isinstance(plan, ScanNode):
        raise PlanError(
            "the simplistic optimizer supports single-table aggregations of "
            f"the form scan → filter* → project?; found {type(plan).__name__}"
        )
    columns = plan.columns or catalog.get(plan.table).schema.field_names
    if outputs is None:
        outputs = tuple((c, col(c)) for c in columns)
    return _Side(plan.table, tuple(columns), predicate, outputs)


def _extract_shape(plan: LogicalPlan, catalog: Catalog) -> _Shape:
    limit = None
    order_by = None
    order_descending = False
    if isinstance(plan, LimitNode):
        limit = plan.n
        plan = plan.child
    if isinstance(plan, SortNode):
        order_by = plan.keys
        order_descending = plan.descending
        plan = plan.child
    final_outputs = None
    if isinstance(plan, ProjectNode):
        final_outputs = plan.outputs
        plan = plan.child
    if not isinstance(plan, AggregateNode):
        raise PlanError(
            "the simplistic optimizer expects an aggregation on top of the "
            f"join (the TPC-H pattern of §4.4); found {type(plan).__name__}"
        )
    aggregate = plan
    plan = plan.child
    post_filter = None
    while isinstance(plan, FilterNode):
        post_filter = (
            plan.predicate if post_filter is None else plan.predicate & post_filter
        )
        plan = plan.child
    # Left-deep multi-join chains: peel enclosing joins whose left child is
    # itself a join; each peeled join becomes a stage over the intermediate.
    extra_stages: list[_Stage] = []
    while isinstance(plan, JoinNode) and isinstance(plan.left, JoinNode):
        extra_stages.append(
            _Stage(
                side=_extract_side(plan.right, catalog, plan.key),
                key=plan.key,
                kind=plan.kind,
            )
        )
        plan = plan.left
    extra_stages.reverse()

    if not isinstance(plan, JoinNode):
        # No join: accept a plain side (scan → filter* → project?) — the
        # single-table aggregation pattern (e.g. TPC-H Q1).
        side = _extract_side_any_key(plan, catalog)
        return _Shape(
            left=side,
            right=None,
            key="",
            join_kind="none",
            post_filter=post_filter,
            group_by=aggregate.group_by,
            aggregates=aggregate.aggregates,
            final_outputs=final_outputs,
            order_by=order_by,
            order_descending=order_descending,
            limit=limit,
        )
    return _Shape(
        left=_extract_side(plan.left, catalog, plan.key),
        right=_extract_side(plan.right, catalog, plan.key),
        key=plan.key,
        join_kind=plan.kind,
        post_filter=post_filter,
        group_by=aggregate.group_by,
        aggregates=aggregate.aggregates,
        final_outputs=final_outputs,
        order_by=order_by,
        order_descending=order_descending,
        limit=limit,
        extra_stages=tuple(extra_stages),
    )


# -- expression lowering ----------------------------------------------------------


def _expr_tuple_fn(
    outputs: tuple[tuple[str, Expression], ...], input_type: TupleType
) -> TupleFunction:
    """Compile named expressions into a vectorizable Map UDF."""
    names = input_type.field_names
    exprs = [expr for _alias, expr in outputs]
    out_type = TupleType(
        Field(alias, infer_atom_type(expr, input_type)) for alias, expr in outputs
    )
    dtypes = [f.item_type.numpy_dtype for f in out_type]

    def scalar(row: tuple) -> tuple:
        env = dict(zip(names, row))
        return tuple(_as_scalar(e.evaluate(env)) for e in exprs)

    def vectorized(columns: tuple[np.ndarray, ...]) -> tuple[np.ndarray, ...]:
        env = dict(zip(names, columns))
        n = len(columns[0]) if columns else 0
        return tuple(
            _broadcast(np.asarray(e.evaluate(env)), n, dt)
            for e, dt in zip(exprs, dtypes)
        )

    return TupleFunction(scalar, out_type, vectorized)


def _as_scalar(value: object) -> object:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _broadcast(values: np.ndarray, n: int, dtype: str) -> np.ndarray:
    if values.ndim == 0:
        values = np.full(n, values)
    return values.astype(dtype, copy=False)


def _expr_predicate(expr: Expression, input_type: TupleType) -> Predicate:
    names = input_type.field_names

    def scalar(row: tuple) -> bool:
        return bool(expr.evaluate(dict(zip(names, row))))

    def vectorized(columns: tuple[np.ndarray, ...]) -> np.ndarray:
        return np.asarray(expr.evaluate(dict(zip(names, columns))), dtype=bool)

    return Predicate(scalar, vectorized)


def _agg_reduce_fn(aggregates: tuple[AggregateSpec, ...]) -> ReduceFunction:
    """Combiner merging partial aggregates position-wise."""
    funcs = tuple(a.func for a in aggregates)

    def combine(acc: tuple, row: tuple) -> tuple:
        out = []
        for func, a, b in zip(funcs, acc, row):
            if func in ("sum", "count"):
                out.append(a + b)
            elif func == "min":
                out.append(min(a, b))
            else:
                out.append(max(a, b))
        return tuple(out)

    sum_fields = None
    if all(f in ("sum", "count") for f in funcs):
        sum_fields = tuple(a.alias for a in aggregates)
    return ReduceFunction(combine, vectorized_sum_fields=sum_fields)


def _agg_input_outputs(shape: _Shape) -> tuple[tuple[str, Expression], ...]:
    """The Map outputs feeding the partial aggregation: keys then inputs."""
    outputs: list[tuple[str, Expression]] = [(k, col(k)) for k in shape.group_by]
    for agg in shape.aggregates:
        expr = lit(1) if agg.func == "count" else agg.expr
        outputs.append((agg.alias, expr))
    return tuple(outputs)


# -- the lowered plan ---------------------------------------------------------------


@dataclass
class ModularisQuery:
    """A logical query lowered to a distributed Modularis plan."""

    root: Operator
    slot: ParameterSlot
    executor: MpiExecutor
    cluster: SimCluster
    shape: _Shape
    output_columns: tuple[str, ...]
    #: Join strategy the lowering chose: "exchange" or "broadcast".
    strategy: str = "exchange"
    #: Strategy the optimizer *wanted* before a fault policy degraded it
    #: (e.g. ``"broadcast"`` refused under injected memory pressure).
    degraded_from: str | None = None

    def bind(self, catalog: Catalog) -> tuple[RowVector, ...]:
        """Extract and prune this query's input relations from ``catalog``.

        The serving layer binds fresh inputs per run; ``run`` and
        ``execution`` both go through here.
        """
        tables = []
        sides = [self.shape.left]
        if self.shape.right is not None:
            sides.append(self.shape.right)
            sides.extend(stage.side for stage in self.shape.extra_stages)
        for side in sides:
            data = catalog.get(side.table).data
            pruned = TupleType(
                Field(c, data.element_type[c]) for c in side.columns
            )
            tables.append(
                RowVector(pruned, [data.column(c) for c in side.columns])
            )
        return tuple(tables)

    def execution(
        self, catalog: Catalog, options: RunOptions | None = None, ctx=None
    ):
        """Stepwise execution: a generator yielding per driver morsel.

        The planner-level twin of
        :func:`repro.core.executor.execution_steps` — same contract (each
        ``next()`` advances one morsel; ``StopIteration.value`` is the
        :class:`ExecutionReport`), plus this query's planning-time
        bookkeeping (the broadcast-fallback recovery evidence).  The
        serving scheduler interleaves many of these on one cluster.

        Args:
            ctx: Pre-built driver context to run under (the serving layer
                passes one so it can watch the query's simulated clock
                for deadline enforcement and charge retry backoff to it);
                ``None`` builds a fresh context from ``options``.
        """
        if options is None:
            options = RunOptions()
        from repro.core.context import ExecutionContext

        if ctx is None:
            ctx = ExecutionContext.from_options(options)
        if options.metrics and self.degraded_from is not None:
            # The broadcast-fallback decision happened at planning time;
            # pre-count it on the run's registry so the snapshot taken
            # inside the executor includes it.
            from repro.observability.metrics import MetricsRegistry

            ctx.metrics = MetricsRegistry()
            ctx.metrics.counter(
                "recovery_actions", action="broadcast_fallback"
            ).inc()
        report = yield from execution_steps(
            self.root, {self.slot: self.bind(catalog)}, options, ctx=ctx
        )
        if self.degraded_from is not None:
            from repro.mpi.trace import TraceEvent
            from repro.observability.events import DRIVER_RANK, RecoveryDetail

            report.recovery_events.append(
                TraceEvent(
                    rank=DRIVER_RANK,
                    kind="recovery",
                    label="broadcast_fallback",
                    start=0.0,
                    end=0.0,
                    detail=RecoveryDetail(
                        action="broadcast_fallback", stage=self.strategy
                    ),
                )
            )
        return report

    def run(
        self,
        catalog: Catalog,
        options: RunOptions | None = None,
        *,
        mode=UNSET,
        profile=UNSET,
        metrics=UNSET,
        faults=UNSET,
        sanitize=UNSET,
        join_kernel=UNSET,
    ) -> ExecutionReport:
        """Execute against the catalog's current table contents.

        ``options`` configures the run (see
        :class:`~repro.core.options.RunOptions`): with ``profile=True``
        the report carries a
        :class:`~repro.observability.profile.PlanProfile`; with
        ``metrics=True`` a
        :class:`~repro.observability.metrics.MetricsSnapshot`;
        ``faults`` arms fault injection for the execution (the
        memory-pressure *planning* degradation happens earlier, in
        :func:`lower_to_modularis`); ``join_kernel`` pins the fused
        ``BuildProbe`` kernel for kernel-equivalence sweeps and
        benchmarks.  The individual keywords are the deprecated
        pre-``RunOptions`` surface.
        """
        options = coerce_options(
            options, "ModularisQuery.run()", mode=mode, profile=profile,
            metrics=metrics, faults=faults, sanitize=sanitize,
            join_kernel=join_kernel,
        )
        steps = self.execution(catalog, options)
        while True:
            try:
                next(steps)
            except StopIteration as done:
                return done.value

    def result_frame(self, result: ExecutionReport) -> Frame:
        """The final output as a columnar frame.

        A scalar aggregation over zero qualifying rows yields one all-zero
        row, matching the reference interpreter (and SUM-as-0 SQL engines).
        """
        (row,) = result.rows
        vector: RowVector = row[0]
        if not self.shape.group_by and len(vector) == 0:
            return Frame(
                {
                    field.name: np.zeros(1, dtype=field.item_type.numpy_dtype)
                    for field in vector.element_type
                }
            )
        return Frame(
            {
                name: vector.column(name)
                for name in vector.element_type.field_names
            }
        )


JOIN_STRATEGIES = ("auto", "exchange", "broadcast")


def _choose_strategy(
    strategy: str, shape: _Shape, catalog: Catalog, n_ranks: int
) -> str:
    """Pick exchange vs broadcast for the join (the stats-based rule).

    Broadcasting replicates the build side to every rank
    (``|L| · (n−1)`` tuples on the wire) but leaves the probe side in
    place; the exchange moves both sides once (``|L| + |R|`` tuples).
    Using base-table row counts from the catalog (filter selectivities are
    not estimated — the paper's optimizer is deliberately simplistic),
    broadcast wins when ``|L| · n < |L| + |R|``.
    """
    if shape.right is None:
        return "scan"
    if shape.extra_stages:
        if strategy == "broadcast":
            raise PlanError(
                "broadcast strategy is not supported for multi-join chains"
            )
        same_key = all(stage.key == shape.key for stage in shape.extra_stages)
        all_inner = shape.join_kind == "inner" and all(
            stage.kind == "inner" for stage in shape.extra_stages
        )
        if same_key and all_inner:
            # The paper's §4.2 optimization as an optimizer rule: joins on
            # one shared attribute pre-partition every relation once and
            # chain BuildProbes, instead of re-shuffling intermediates.
            return "cascade"
        return "multistage"
    if strategy != "auto":
        return strategy
    left_rows = catalog.get(shape.left.table).stats.row_count
    right_rows = catalog.get(shape.right.table).stats.row_count
    if left_rows * n_ranks < left_rows + right_rows:
        return "broadcast"
    return "exchange"


def lower_to_modularis(
    plan: LogicalPlan,
    catalog: Catalog,
    cluster: SimCluster,
    local_fanout: int = 16,
    network_fanout: int | None = None,
    join_strategy: str = "exchange",
    options: RunOptions | None = None,
    faults=UNSET,
) -> ModularisQuery:
    """Optimize and lower a logical plan onto a simulated cluster.

    Args:
        join_strategy: ``exchange`` (the Figure 3 repartition join — the
            paper's plan and the default), ``broadcast`` (replicate the
            build side via MpiBroadcast — an extension this library adds),
            or ``auto`` to let the stats rule decide.
        options: :class:`~repro.core.options.RunOptions` known at planning
            time.  Under its fault policy's ``memory_pressure`` flag the
            lowering refuses the broadcast-join strategy — replicating the
            build side is exactly what a memory-pressured build rank
            cannot afford — and degrades to the shuffle (exchange) join
            plan, recording the original choice on
            ``ModularisQuery.degraded_from``.
        faults: Deprecated — pass ``options=RunOptions(faults=...)``.
    """
    if join_strategy not in JOIN_STRATEGIES:
        raise PlanError(
            f"unknown join strategy {join_strategy!r}; have {JOIN_STRATEGIES}"
        )
    options = coerce_options(options, "lower_to_modularis()", faults=faults)
    faults = options.faults
    optimized = optimize(plan, catalog)
    shape = _extract_shape(optimized, catalog)
    n_net = network_fanout or cluster.n_ranks
    strategy = _choose_strategy(join_strategy, shape, catalog, cluster.n_ranks)
    degraded_from = None
    if (
        faults is not None
        and getattr(faults, "memory_pressure", False)
        and strategy == "broadcast"
    ):
        degraded_from, strategy = "broadcast", "exchange"

    left_schema = _pruned_schema(catalog, shape.left)
    if shape.right is None:
        slot = ParameterSlot(TupleType.of(left=row_vector_type(left_schema)))
        right_schema = None
        stage_schemas = []
    else:
        right_schema = _pruned_schema(catalog, shape.right)
        stage_schemas = [
            _pruned_schema(catalog, stage.side) for stage in shape.extra_stages
        ]
        slot_fields = {
            "left": row_vector_type(left_schema),
            "right": row_vector_type(right_schema),
        }
        for i, schema in enumerate(stage_schemas):
            slot_fields[f"stage{i}"] = row_vector_type(schema)
        slot = ParameterSlot(TupleType.of(**slot_fields))

    def side_stream(worker_slot: ParameterSlot, side: _Side, schema, param: str) -> Operator:
        stream: Operator = RowScan(
            Projection(ParameterLookup(worker_slot), [param]),
            field=param,
            shard_by_rank=True,
        )
        if side.predicate is not None:
            stream = Filter(stream, _expr_predicate(side.predicate, schema))
        return Map(stream, _expr_tuple_fn(side.outputs, schema))

    def build_worker_exchange(worker_slot: ParameterSlot) -> Operator:
        exchanged = []
        for side, schema, param, pid_field, data_field in (
            (shape.left, left_schema, "left", "net_l", "data_l"),
            (shape.right, right_schema, "right", "net_r", "data_r"),
        ):
            stream = side_stream(worker_slot, side, schema, param)
            net_fn = HashPartition(shape.key, n_net, salt=0)
            local_hist = LocalHistogram(stream, net_fn)
            global_hist = MpiHistogram(local_hist, n_net)
            exchanged.append(
                MpiExchange(
                    stream, local_hist, global_hist, net_fn,
                    id_field=pid_field, data_field=data_field,
                )
            )
        zipped = Zip(exchanged)
        joined = NestedMap(
            zipped, lambda s: _level1(s, shape, local_fanout)
        )
        flat = RowScan(joined, field="agg")
        merged = _merge_partials(flat, shape)
        return MaterializeRowVector(merged, field="result")

    def build_worker_broadcast(worker_slot: ParameterSlot) -> Operator:
        from repro.core.functions import RadixPartition
        from repro.core.operators import MpiBroadcast

        build = side_stream(worker_slot, shape.left, left_schema, "left")
        local_count = LocalHistogram(build, RadixPartition(shape.key, 1))
        global_count = MpiHistogram(local_count, 1)
        replicated = MpiBroadcast(build, local_count, global_count)
        probe = side_stream(worker_slot, shape.right, right_schema, "right")
        stream = _post_join(
            BuildProbe(replicated, probe, keys=shape.key, join_type=shape.join_kind),
            shape,
        )
        merged = _merge_partials(stream, shape)
        return MaterializeRowVector(merged, field="result")

    def build_worker_single(worker_slot: ParameterSlot) -> Operator:
        stream = side_stream(worker_slot, shape.left, left_schema, "left")
        merged = _merge_partials(_post_join(stream, shape), shape)
        return MaterializeRowVector(merged, field="result")

    def build_worker_cascade(worker_slot: ParameterSlot) -> Operator:
        """Same-key join chain: the Figure 4 'optimized' plan shape.

        All N+1 relations are network-partitioned up front on the shared
        key; per partition, the sides are locally partitioned and joined
        by a chain of BuildProbes whose intermediates never materialize or
        re-shuffle.
        """
        sides = [
            ("left", shape.left, left_schema),
            ("right", shape.right, right_schema),
        ] + [
            (f"stage{i}", stage.side, stage_schemas[i])
            for i, stage in enumerate(shape.extra_stages)
        ]
        exchanged = []
        for i, (param, side, schema) in enumerate(sides):
            stream = side_stream(worker_slot, side, schema, param)
            net_fn = HashPartition(shape.key, n_net, salt=0)
            local_hist = LocalHistogram(stream, net_fn)
            global_hist = MpiHistogram(local_hist, n_net)
            exchanged.append(
                MpiExchange(
                    stream, local_hist, global_hist, net_fn,
                    id_field=f"net{i}", data_field=f"data{i}",
                )
            )
        zipped = Zip(exchanged)
        k = len(sides)

        def level1(slot: ParameterSlot) -> Operator:
            partitioned = []
            for i in range(k):
                stream = RowScan(Projection(ParameterLookup(slot), [f"data{i}"]))
                local_fn = HashPartition(shape.key, local_fanout, salt=1)
                hist = LocalHistogram(stream, local_fn)
                hist.phase_name = "local_partition"
                partitioned.append(
                    LocalPartitioning(
                        stream, hist, local_fn,
                        id_field=f"sub{i}", data_field=f"sd{i}",
                    )
                )
            pairs = Zip(partitioned)

            def level2(slot2: ParameterSlot) -> Operator:
                acc = RowScan(Projection(ParameterLookup(slot2), ["sd0"]))
                for i in range(1, k):
                    side_scan = RowScan(
                        Projection(ParameterLookup(slot2), [f"sd{i}"])
                    )
                    acc = BuildProbe(side_scan, acc, keys=shape.key)
                merged = _merge_partials(_post_join(acc, shape), shape)
                return MaterializeRowVector(merged, field="agg")

            joined = NestedMap(pairs, level2)
            flat = RowScan(joined, field="agg")
            merged = _merge_partials(flat, shape)
            return MaterializeRowVector(merged, field="agg")

        joined = NestedMap(zipped, level1)
        flat = RowScan(joined, field="agg")
        merged = _merge_partials(flat, shape)
        return MaterializeRowVector(merged, field="result")

    def build_worker_multistage(worker_slot: ParameterSlot) -> Operator:
        stream = _exchange_join_stage(
            side_stream(worker_slot, shape.left, left_schema, "left"),
            side_stream(worker_slot, shape.right, right_schema, "right"),
            shape.key,
            shape.join_kind,
            n_net,
            local_fanout,
        )
        for i, stage in enumerate(shape.extra_stages):
            stream = _exchange_join_stage(
                stream,
                side_stream(worker_slot, stage.side, stage_schemas[i], f"stage{i}"),
                stage.key,
                stage.kind,
                n_net,
                local_fanout,
            )
        merged = _merge_partials(_post_join(stream, shape), shape)
        return MaterializeRowVector(merged, field="result")

    if strategy == "scan":
        build_worker = build_worker_single
    elif strategy == "broadcast":
        build_worker = build_worker_broadcast
    elif strategy == "multistage":
        build_worker = build_worker_multistage
    elif strategy == "cascade":
        build_worker = build_worker_cascade
    else:
        build_worker = build_worker_exchange
    executor = MpiExecutor(ParameterLookup(slot), build_worker, cluster)
    flat = RowScan(executor, field="result")
    final = _merge_partials(flat, shape)
    if shape.final_outputs is not None:
        final = Map(
            final, _expr_tuple_fn(shape.final_outputs, final.output_type)
        )
    if shape.order_by is not None:
        final = LocalSort(final, shape.order_by, descending=shape.order_descending)
    if shape.limit is not None:
        final = Limit(final, shape.limit)
    root = MaterializeRowVector(final, field="result")
    if degraded_from is not None:
        # The memory-pressure fallback is a machine-made plan rewrite:
        # re-verify it here, before anything executes it, the same way the
        # degraded cluster re-shard is re-verified in stage recovery.
        from repro.analysis import verify

        verify(root, name=f"lowered plan (degraded from {degraded_from})")
    return ModularisQuery(
        root=root,
        slot=slot,
        executor=executor,
        cluster=cluster,
        shape=shape,
        output_columns=root.output_type["result"].element_type.field_names,
        strategy=strategy,
        degraded_from=degraded_from,
    )


def _pruned_schema(catalog: Catalog, side: _Side) -> TupleType:
    schema = catalog.get(side.table).schema
    return TupleType(Field(c, schema[c]) for c in side.columns)


def _merge_partials(stream: Operator, shape: _Shape) -> Operator:
    """Post-aggregate partial results at a nesting boundary (§4.4)."""
    if shape.group_by:
        return ReduceByKey(stream, shape.group_by, _agg_reduce_fn(shape.aggregates))
    return Reduce(stream, _agg_reduce_fn(shape.aggregates))


def _exchange_join_stage(
    left: Operator,
    right: Operator,
    key: str,
    kind: str,
    n_net: int,
    local_fanout: int,
) -> Operator:
    """One full exchange-join stage returning a flat match stream.

    Used by the multi-join lowering: both inputs run the LocalHistogram →
    MpiHistogram → MpiExchange ladder on ``key``, corresponding partitions
    are zipped, locally partitioned, and joined — the Figure 3 pattern with
    the stage's own key.  When ``left`` is the previous stage's output it
    has two consumers (histogram and exchange), so the plan compiler
    materializes it: the intermediate-result materialization every
    re-shuffling join chain pays (§5.2.1).
    """
    exchanged = []
    for stream, pid_field, data_field in (
        (left, "net_l", "data_l"),
        (right, "net_r", "data_r"),
    ):
        net_fn = HashPartition(key, n_net, salt=0)
        local_hist = LocalHistogram(stream, net_fn)
        global_hist = MpiHistogram(local_hist, n_net)
        exchanged.append(
            MpiExchange(
                stream, local_hist, global_hist, net_fn,
                id_field=pid_field, data_field=data_field,
            )
        )
    zipped = Zip(exchanged)

    def level1(slot: ParameterSlot) -> Operator:
        partitioned = []
        for data_field, sub_id, sub_data in (
            ("data_l", "sub_l", "sd_l"),
            ("data_r", "sub_r", "sd_r"),
        ):
            stream = RowScan(Projection(ParameterLookup(slot), [data_field]))
            local_fn = HashPartition(key, local_fanout, salt=1)
            hist = LocalHistogram(stream, local_fn)
            hist.phase_name = "local_partition"
            partitioned.append(
                LocalPartitioning(
                    stream, hist, local_fn, id_field=sub_id, data_field=sub_data
                )
            )
        pairs = Zip(partitioned)

        def level2(slot2: ParameterSlot) -> Operator:
            build = RowScan(Projection(ParameterLookup(slot2), ["sd_l"]))
            probe = RowScan(Projection(ParameterLookup(slot2), ["sd_r"]))
            joined = BuildProbe(build, probe, keys=key, join_type=kind)
            return MaterializeRowVector(joined, field="matches")

        joined = NestedMap(pairs, level2)
        flat = RowScan(joined, field="matches")
        return MaterializeRowVector(flat, field="matches")

    joined = NestedMap(zipped, level1)
    return RowScan(joined, field="matches")


def _level1(slot: ParameterSlot, shape: _Shape, local_fanout: int) -> Operator:
    """First nesting level: local partitioning of one network partition."""
    partitioned = []
    for data_field, sub_id, sub_data in (
        ("data_l", "sub_l", "sd_l"),
        ("data_r", "sub_r", "sd_r"),
    ):
        stream = RowScan(Projection(ParameterLookup(slot), [data_field]))
        local_fn = HashPartition(shape.key, local_fanout, salt=1)
        hist = LocalHistogram(stream, local_fn)
        hist.phase_name = "local_partition"
        partitioned.append(
            LocalPartitioning(
                stream, hist, local_fn, id_field=sub_id, data_field=sub_data
            )
        )
    pairs = Zip(partitioned)
    joined = NestedMap(pairs, lambda s: _level2(s, shape))
    flat = RowScan(joined, field="agg")
    merged = _merge_partials(flat, shape)
    return MaterializeRowVector(merged, field="agg")


def _post_join(stream: Operator, shape: _Shape) -> Operator:
    """Residual filter plus the projection feeding the partial aggregation."""
    if shape.post_filter is not None:
        stream = Filter(stream, _expr_predicate(shape.post_filter, stream.output_type))
    return Map(stream, _expr_tuple_fn(_agg_input_outputs(shape), stream.output_type))


def _level2(slot: ParameterSlot, shape: _Shape) -> Operator:
    """Innermost level: join one sub-partition pair and pre-aggregate."""
    build = RowScan(Projection(ParameterLookup(slot), ["sd_l"]))
    probe = RowScan(Projection(ParameterLookup(slot), ["sd_r"]))
    joined = BuildProbe(build, probe, keys=shape.key, join_type=shape.join_kind)
    merged = _merge_partials(_post_join(joined, shape), shape)
    return MaterializeRowVector(merged, field="agg")
