"""Type-flow verification pass (rules MOD001–MOD006).

Re-infers every operator's output :class:`~repro.types.tuples.TupleType`
from the *declared* types of its upstream edges — the same computation the
operator constructors perform, but run over the finished plan.  Operator
constructors only see the plan as it is being built; plan *rewrites*
(``prepare``'s SharedScan insertion, optimizer splices, hand-patched
``upstreams``) happen afterwards and can silently break the invariants the
constructors checked.  This pass restores the guarantee statically.

Using declared (not propagated) upstream types keeps diagnostics local:
one broken edge produces one finding at the broken operator, not a cascade
of downstream mismatches.
"""

from __future__ import annotations

from functools import reduce

from repro.analysis.diagnostics import Reporter, unwrap
from repro.analysis.structure import ScopeInfo, scope_paths
from repro.core.operator import Operator
from repro.core.operators.build_probe import BuildProbe
from repro.core.operators.cartesian_product import CartesianProduct
from repro.core.operators.chunk_ops import ChunkScan, MaterializeChunks
from repro.core.operators.filter_op import Filter
from repro.core.operators.limit_op import Limit
from repro.core.operators.local_histogram import HISTOGRAM_TYPE, LocalHistogram
from repro.core.operators.local_partitioning import LocalPartitioning
from repro.core.operators.map_ops import Map, ParametrizedMap
from repro.core.operators.materialize import MaterializeRowVector
from repro.core.operators.mpi_broadcast import MpiBroadcast
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.operators.mpi_histogram import MpiHistogram
from repro.core.operators.nested_map import NestedMap
from repro.core.operators.nic_aggregate import NicPartialAggregate
from repro.core.operators.parameter_lookup import ParameterLookup
from repro.core.operators.projection import Projection
from repro.core.operators.reduce_ops import Reduce, ReduceByKey
from repro.core.operators.row_scan import RowScan
from repro.core.operators.sort_ops import LocalSort, MergeJoin
from repro.core.operators.zip_op import Zip
from repro.core.plan import SharedScan, walk
from repro.errors import PlanError, TypeCheckError
from repro.types.atoms import INT64
from repro.types.collections import CollectionType, chunked_type, row_vector_type
from repro.types.tuples import TupleType, concat_tuple_types

__all__ = ["run"]


class _Issue(Exception):
    """Internal: an inference step found a violation of a specific rule."""

    def __init__(self, rule_id: str, message: str) -> None:
        super().__init__(message)
        self.rule_id = rule_id
        self.message = message


def _collection_field(op: Operator, kind: str) -> CollectionType:
    """The collection a scan operator reads, checked against its format."""
    up_type = op.upstreams[0].output_type
    name = type(op).__name__
    if op.field not in up_type:
        raise _Issue(
            "MOD002",
            f"{name} scans field {op.field!r} but the upstream type "
            f"{up_type!r} has no such field",
        )
    item = up_type[op.field]
    if not isinstance(item, CollectionType):
        raise _Issue(
            "MOD003",
            f"{name} scans field {op.field!r} of {up_type!r}, which is an "
            "atom, not a collection",
        )
    if item.kind != kind:
        raise _Issue(
            "MOD003",
            f"{name} reads the {kind} format but field {op.field!r} holds a "
            f"{item.kind}; use the scan operator dedicated to that format",
        )
    return item


def _require(op: Operator, tuple_type: TupleType, names, role: str) -> None:
    missing = [n for n in names if n not in tuple_type]
    if missing:
        raise _Issue(
            "MOD002",
            f"{type(op).__name__} references {role} fields {missing} absent "
            f"from {tuple_type!r} (fields: {list(tuple_type.field_names)})",
        )


def _check_partition_fn(op: Operator, fn, data_type: TupleType) -> None:
    key = getattr(fn, "key_field", None)
    if key is not None and key not in data_type:
        raise _Issue(
            "MOD002",
            f"{type(op).__name__}'s partition function keys on {key!r}, "
            f"absent from the data type {data_type!r}",
        )


def _check_histograms(op: Operator, positions: dict[int, str]) -> None:
    for pos, role in positions.items():
        got = op.upstreams[pos].output_type
        if got != HISTOGRAM_TYPE:
            raise _Issue(
                "MOD004",
                f"{type(op).__name__}'s {role} histogram upstream must "
                f"produce {HISTOGRAM_TYPE!r}, got {got!r}",
            )


def _join_output(op, left: TupleType, right: TupleType, keys) -> TupleType:
    name = type(op).__name__
    _require(op, left, keys, "build-side join")
    _require(op, right, keys, "probe-side join")
    for key in keys:
        if left[key] != right[key]:
            raise _Issue(
                "MOD002",
                f"{name} join attribute {key!r} has type {left[key]!r} on "
                f"the left but {right[key]!r} on the right",
            )
    key_type = left.project(keys)
    if op.join_type in ("semi", "anti"):
        return concat_tuple_types(key_type, right.drop(keys))
    return concat_tuple_types(
        concat_tuple_types(key_type, left.drop(keys)), right.drop(keys)
    )


def _yields_exactly_one(op: Operator) -> bool:
    """Statically prove the subtree emits exactly one tuple per run."""
    op = unwrap(op)
    if isinstance(op, (MaterializeRowVector, MaterializeChunks, ParameterLookup)):
        return True
    if isinstance(op, (Map, ParametrizedMap, Projection, NestedMap)):
        # One output per input tuple.
        return _yields_exactly_one(op.upstreams[0])
    if isinstance(op, (Zip, CartesianProduct)):
        return all(_yields_exactly_one(up) for up in op.upstreams)
    return False


def _infer(op: Operator) -> TupleType | None:
    """Re-derive ``op``'s output type; ``None`` when the class is unknown."""
    ups = tuple(up.output_type for up in op.upstreams)

    if isinstance(op, RowScan):
        return _collection_field(op, "RowVector").element_type
    if isinstance(op, ChunkScan):
        return _collection_field(op, "ChunkedRowVector").element_type
    if isinstance(op, Projection):
        _require(op, ups[0], op.fields, "projected")
        return ups[0].project(op.fields)
    if isinstance(op, ParameterLookup):
        return op.slot.param_type
    if isinstance(op, (Map, ParametrizedMap)):
        try:
            return op.fn.output_type_for(ups[0])
        except TypeCheckError as exc:
            raise _Issue(
                "MOD002",
                f"{type(op).__name__}'s function rejects the upstream type "
                f"{ups[0]!r}: {exc}",
            ) from None
    if isinstance(op, (Filter, Limit, Reduce)):
        return ups[0]
    if isinstance(op, LocalSort):
        _require(op, ups[0], op.keys, "sort-key")
        return ups[0]
    if isinstance(op, ReduceByKey):
        _require(op, ups[0], op.key_fields, "grouping-key")
        if len(op.key_fields) == len(ups[0]):
            raise _Issue(
                "MOD002",
                "ReduceByKey has no non-key field left to aggregate in "
                f"{ups[0]!r}",
            )
        return ups[0]
    if isinstance(op, NicPartialAggregate):
        _require(op, ups[0], op._combiner.key_fields, "grouping-key")
        return ups[0]
    if isinstance(op, (Zip, CartesianProduct)):
        try:
            return reduce(concat_tuple_types, ups)
        except TypeCheckError as exc:
            raise _Issue(
                "MOD002",
                f"{type(op).__name__} upstream field names clash: {exc}",
            ) from None
    if isinstance(op, BuildProbe):
        return _join_output(op, ups[0], ups[1], op.keys)
    if isinstance(op, MergeJoin):
        return _join_output(op, ups[0], ups[1], (op.key,))
    if isinstance(op, MaterializeRowVector):
        return TupleType.of(**{op.field: row_vector_type(ups[0])})
    if isinstance(op, MaterializeChunks):
        return TupleType.of(**{op.field: chunked_type(ups[0])})
    if isinstance(op, LocalHistogram):
        _check_partition_fn(op, op.bucket_fn, ups[0])
        return HISTOGRAM_TYPE
    if isinstance(op, MpiHistogram):
        _check_histograms(op, {0: "input"})
        return HISTOGRAM_TYPE
    if isinstance(op, LocalPartitioning):
        _check_histograms(op, {1: "local"})
        _check_partition_fn(op, op.partition_fn, ups[0])
        return TupleType.of(
            **{op.id_field: INT64, op.data_field: row_vector_type(ups[0])}
        )
    if isinstance(op, MpiExchange):
        _check_histograms(op, {1: "local", 2: "global"})
        _check_partition_fn(op, op.partition_fn, ups[0])
        wire = ups[0]
        if op.compression is not None:
            if len(ups[0]) != 2 or any(
                ups[0][f] != INT64 for f in ups[0].field_names
            ):
                raise _Issue(
                    "MOD003",
                    "radix compression needs ⟨key, payload⟩ INT64 tuples on "
                    f"the wire, got {ups[0]!r}",
                )
            from repro.core.compression import COMPRESSED_TYPE

            wire = COMPRESSED_TYPE
        return TupleType.of(
            **{op.id_field: INT64, op.data_field: row_vector_type(wire)}
        )
    if isinstance(op, MpiBroadcast):
        _check_histograms(op, {1: "local", 2: "global"})
        return ups[0]
    if isinstance(op, (NestedMap, MpiExecutor)):
        if op.slot.param_type != ups[0]:
            raise _Issue(
                "MOD001",
                f"{type(op).__name__}'s nested plan was built against the "
                f"parameter type {op.slot.param_type!r} but the upstream now "
                f"produces {ups[0]!r}; rebuild the nested plan",
            )
        if isinstance(op, NestedMap) and not _yields_exactly_one(op.inner):
            raise _Issue(
                "MOD005",
                "NestedMap's nested plan (root "
                f"{type(unwrap(op.inner)).__name__}) is not proven to yield "
                "exactly one tuple per invocation; end it with "
                "MaterializeRowVector/MaterializeChunks",
            )
        return op.inner.output_type
    return None


def run(scope: ScopeInfo, reporter: Reporter) -> None:
    """Type-check one scope, reporting through ``reporter``."""
    paths = scope_paths(scope)
    for op in walk(scope.root):
        if isinstance(op, SharedScan):
            continue  # transparent; the wrapped operator is checked itself
        path = paths[id(op)]
        if (
            isinstance(op, ParameterLookup)
            and scope.in_cluster
            and op.slot.id not in scope.cluster_slots
        ):
            reporter.emit(
                "MOD006", op, path,
                f"ParameterLookup reads slot #{op.slot.id}, which is bound "
                "outside this MpiExecutor scope; MPI workers start from a "
                "fresh context and never see driver-side bindings",
            )
        try:
            declared = op.output_type
        except PlanError as exc:
            reporter.emit("MOD001", op, path, str(exc))
            continue
        try:
            inferred = _infer(op)
        except _Issue as issue:
            reporter.emit(issue.rule_id, op, path, issue.message)
            continue
        except TypeCheckError as exc:
            reporter.emit("MOD002", op, path, str(exc))
            continue
        if inferred is not None and inferred != declared:
            reporter.emit(
                "MOD001", op, path,
                f"declared output type {declared!r} disagrees with "
                f"{inferred!r} re-inferred from the upstream edges",
            )
