"""Runtime advisories: lint rules that need a measured execution.

The static analyzer (:mod:`repro.analysis.lint`) judges the plan DAG
before any data flows.  A few smells only show up in the numbers — the
plan is well-formed but the *measured* behaviour is wasteful.  These
rules (MOD040+) run over the :class:`~repro.observability.metrics.MetricsSnapshot`
of an executed plan and report the same :class:`~repro.analysis.diagnostics.Diagnostic`
objects as the static rules, so renderers and suppression lists treat
them uniformly.

Typical use (also behind ``repro metrics``)::

    report = execute(plan, params=..., metrics=True)
    findings = analyze_runtime(report.metrics)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import MOD040, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.metrics import MetricsSnapshot

__all__ = ["SHUFFLE_AMPLIFICATION_FACTOR", "analyze_runtime"]

#: MOD040 fires when shuffle bytes exceed this multiple of the plan's
#: input bytes.  A plain repartition ships each tuple once (factor ≈ 1);
#: a factor beyond 2 means the exchange moved substantially more data
#: than the query read.
SHUFFLE_AMPLIFICATION_FACTOR = 2.0


def analyze_runtime(
    snapshot: "MetricsSnapshot | None",
    shuffle_amplification_factor: float = SHUFFLE_AMPLIFICATION_FACTOR,
) -> list[Diagnostic]:
    """Advisory findings over one execution's metrics snapshot.

    Args:
        snapshot: ``ExecutionReport.metrics`` of a run under
            ``execute(..., metrics=True)``; ``None`` yields no findings.
        shuffle_amplification_factor: MOD040 threshold — the multiple of
            ``plan_input_bytes`` the recorded ``shuffle_bytes`` may reach
            before the advisory fires.
    """
    if snapshot is None:
        return []
    findings: list[Diagnostic] = []
    input_bytes = snapshot.total("plan_input_bytes")
    shuffle_bytes = snapshot.total("shuffle_bytes")
    if input_bytes > 0 and shuffle_bytes > shuffle_amplification_factor * input_bytes:
        findings.append(
            Diagnostic(
                rule=MOD040,
                severity=MOD040.severity,
                message=(
                    f"shuffled {shuffle_bytes} bytes against "
                    f"{input_bytes} input bytes "
                    f"({shuffle_bytes / input_bytes:.1f}x, threshold "
                    f"{shuffle_amplification_factor:.1f}x); consider "
                    "pre-aggregation, projection pushdown, or a broadcast "
                    "join of the small side"
                ),
                path="<metrics>",
                operator="MpiExchange",
            )
        )
    return findings
