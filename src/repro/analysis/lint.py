"""Public analyzer entry points and the ``repro lint`` target resolver.

``analyze(plan)`` runs all three passes over every scope of a plan and
returns the findings; ``verify(plan)`` raises
:class:`~repro.errors.PlanVerificationError` when any finding is an error.
Both accept either a root :class:`~repro.core.operator.Operator` or any
object with a ``.root`` operator attribute (the shipped ``*Plan``
dataclasses).

The CLI half resolves lint *targets*: builtin plan names (the four
canonical plans, built with small representative schemas), Python files,
or directories of Python files.  A file participates by exposing a
module-level ``lint_plans()`` function returning ``(name, plan)`` pairs —
importing a file never executes it (``repro lint`` relies on the usual
``if __name__ == "__main__"`` guard).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis import commsafety, pipelines, recovery, typeflow
from repro.analysis.diagnostics import Diagnostic, Reporter, Severity
from repro.analysis.structure import iter_scopes
from repro.core.operator import Operator
from repro.errors import PlanError, PlanVerificationError

__all__ = ["analyze", "verify", "run_cli"]

_PASSES = (typeflow.run, commsafety.run, pipelines.run, recovery.run)


def _as_root(plan: object) -> Operator:
    if isinstance(plan, Operator):
        return plan
    root = getattr(plan, "root", None)
    if isinstance(root, Operator):
        return root
    raise PlanError(
        f"cannot analyze {plan!r}: expected an Operator or an object with "
        "a `.root` operator"
    )


def analyze(
    plan: object, suppress: Iterable[str] = (), name: str = "plan"
) -> list[Diagnostic]:
    """Statically analyze a plan; returns findings, worst first."""
    root = _as_root(plan)
    reporter = Reporter(suppress)
    for scope in iter_scopes(root, path=name):
        for run_pass in _PASSES:
            run_pass(scope, reporter)
    return sorted(
        reporter.diagnostics,
        key=lambda d: (-int(d.severity), d.rule.id, d.path),
    )


def verify(
    plan: object, suppress: Iterable[str] = (), name: str = "plan"
) -> list[Diagnostic]:
    """Like :func:`analyze`, but raise on error-severity findings."""
    diagnostics = analyze(plan, suppress=suppress, name=name)
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        listing = "\n".join(f"  {d.format()}" for d in errors)
        raise PlanVerificationError(
            f"plan failed static verification with {len(errors)} error(s):\n"
            f"{listing}",
            errors,
        )
    return diagnostics


# -- `repro lint` target resolution ---------------------------------------------


def _builtin_plans(name: str, machines: int) -> Iterator[tuple[str, object]]:
    """Build a canonical plan by name with small representative schemas."""
    from repro.core.plans import (
        build_broadcast_join,
        build_distributed_groupby,
        build_distributed_join,
        build_join_sequence,
    )
    from repro.mpi.cluster import SimCluster
    from repro.types.atoms import INT64
    from repro.types.tuples import TupleType

    cluster = SimCluster(machines)
    if name in ("join", "all"):
        yield "join", build_distributed_join(
            cluster,
            TupleType.of(key=INT64, lpay=INT64),
            TupleType.of(key=INT64, rpay=INT64),
        )
    if name in ("groupby", "all"):
        yield "groupby", build_distributed_groupby(
            cluster, TupleType.of(key=INT64, value=INT64)
        )
    if name in ("broadcast_join", "all"):
        yield "broadcast_join", build_broadcast_join(
            cluster,
            TupleType.of(key=INT64, spay=INT64),
            TupleType.of(key=INT64, bpay=INT64),
        )
    if name in ("join_sequence", "all"):
        for variant in ("naive", "optimized"):
            yield f"join_sequence[{variant}]", build_join_sequence(
                cluster,
                [
                    TupleType.of(key=INT64, a=INT64),
                    TupleType.of(key=INT64, b=INT64),
                    TupleType.of(key=INT64, c=INT64),
                ],
                variant=variant,
            )


BUILTIN_TARGETS = ("join", "groupby", "broadcast_join", "join_sequence", "all")


def _file_plans(path: Path) -> Iterator[tuple[str, object]]:
    """Import ``path`` and collect the plans its ``lint_plans()`` exposes."""
    spec = importlib.util.spec_from_file_location(
        f"_repro_lint_{path.stem}", path
    )
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise PlanError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    hook = getattr(module, "lint_plans", None)
    if hook is None:
        return
    for name, plan in hook():
        yield f"{path.name}:{name}", plan


def _resolve_targets(
    targets: Iterable[str], machines: int
) -> Iterator[tuple[str, object]]:
    for target in targets:
        if target in BUILTIN_TARGETS:
            yield from _builtin_plans(target, machines)
            continue
        path = Path(target)
        if path.is_dir():
            for file in sorted(path.glob("*.py")):
                if not file.name.startswith("_"):
                    yield from _file_plans(file)
        elif path.is_file():
            yield from _file_plans(path)
        else:
            raise PlanError(
                f"unknown lint target {target!r}: not a builtin plan "
                f"({', '.join(BUILTIN_TARGETS)}), file, or directory"
            )


def run_cli(args) -> int:
    """Body of ``repro lint`` (argparse namespace in, exit code out)."""
    suppress = tuple(args.suppress or ())
    try:
        Reporter(suppress)  # validate rule ids before any work
        plans = list(_resolve_targets(args.targets, args.machines))
    except (PlanError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    findings: list[Diagnostic] = []
    checked = 0
    for name, plan in plans:
        checked += 1
        findings.extend(analyze(plan, suppress=suppress, name=name))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "plans": checked,
                    "diagnostics": [d.to_dict() for d in findings],
                },
                indent=2,
                ensure_ascii=False,
            )
        )
    else:
        for diagnostic in findings:
            print(diagnostic.format())
        errors = sum(d.is_error for d in findings)
        warnings = sum(d.severity == Severity.WARNING for d in findings)
        print(
            f"checked {checked} plan(s): {errors} error(s), "
            f"{warnings} warning(s), "
            f"{len(findings) - errors - warnings} note(s)"
        )
    if checked == 0:
        print("warning: no plans found to lint", file=sys.stderr)
    return 1 if any(d.is_error for d in findings) else 0
