"""Communication-safety pass (rules MOD010–MOD013).

Statically proves the MPI epoch discipline that the simulated RDMA
substrate otherwise enforces at runtime:

* collectives only run where a communicator exists (MOD010) and where the
  invocation count is rank-uniform (MOD011, MOD013);
* every ``MpiExchange``/``MpiBroadcast`` derives its window layout from a
  histogram ladder computed *over the data it actually ships, with the
  partition function it actually uses* (MOD012).  When that holds, each
  ⟨source rank, partition⟩ region of the RMA window is exclusive by
  construction, the window capacity is exactly the global histogram total,
  and the one-sided writes cannot overlap — the property
  ``Window._epoch_writes`` can only check mid-execution, proven before a
  single tuple flows.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Reporter, unwrap
from repro.analysis.structure import (
    ScopeInfo,
    equivalent_streams,
    same_partition_fn,
    scope_paths,
)
from repro.analysis.symbolic import compare_partition_fns
from repro.core.operator import Operator
from repro.core.operators.local_histogram import LocalHistogram
from repro.core.operators.mpi_broadcast import MpiBroadcast
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.operators.mpi_histogram import MpiHistogram
from repro.core.plan import SharedScan, walk

__all__ = ["run"]

#: Operators that call into the communicator (collectives / RMA epochs).
COLLECTIVES = (MpiExchange, MpiBroadcast, MpiHistogram)


def _check_ladder(
    op: Operator, reporter: Reporter, path: str, want_buckets: int | None
) -> None:
    """MOD012: prove ``op``'s histogram ladder matches its data and fn.

    ``op`` is an MpiExchange or MpiBroadcast with upstreams
    ``(data, local_histogram, global_histogram)``.  ``want_buckets`` pins
    the expected bucket count (1 for broadcasts, the partition fanout for
    exchanges — None to take it from the exchange's partition function).
    """
    name = type(op).__name__
    data = op.upstreams[0]
    local = unwrap(op.upstreams[1])
    global_ = unwrap(op.upstreams[2])

    if not isinstance(local, LocalHistogram):
        reporter.emit(
            "MOD012", op, path,
            f"{name}'s local-histogram upstream is a "
            f"{type(local).__name__}, not a LocalHistogram; per-rank "
            "contribution counts are not statically derivable",
        )
        return
    if not isinstance(global_, MpiHistogram):
        reporter.emit(
            "MOD012", op, path,
            f"{name}'s global-histogram upstream is a "
            f"{type(global_).__name__}, not an MpiHistogram; the window "
            "capacity (global partition sizes) is not statically derivable",
        )
        return

    fanout = want_buckets
    if fanout is None:
        fanout = op.partition_fn.n_partitions
    if local.n_buckets != fanout:
        reporter.emit(
            "MOD012", op, path,
            f"{name} lays out {fanout} window regions but its local "
            f"histogram counts {local.n_buckets} buckets",
        )
    if global_.n_buckets != fanout:
        reporter.emit(
            "MOD012", op, path,
            f"{name} lays out {fanout} window regions but its global "
            f"histogram reduces {global_.n_buckets} buckets",
        )
    if isinstance(op, MpiExchange):
        # Symbolic first: a semantic proof either way beats the structural
        # comparison, which both rejects equivalent-but-different forms and
        # trusts lying subclasses (repro.analysis.symbolic).
        verdict = compare_partition_fns(local.bucket_fn, op.partition_fn)
        if verdict.distinct:
            reporter.emit(
                "MOD012", op, path,
                f"{name} routes tuples with {op.partition_fn!r} but its "
                f"local histogram counted them with {local.bucket_fn!r}; "
                f"they are semantically different ({verdict.reason}), so "
                "the pre-computed exclusive offsets do not match the actual "
                "write targets and one-sided writes may overlap",
            )
        elif verdict.unknown and not same_partition_fn(
            local.bucket_fn, op.partition_fn
        ):
            reporter.emit(
                "MOD012", op, path,
                f"{name} routes tuples with {op.partition_fn!r} but its "
                f"local histogram counted them with {local.bucket_fn!r}; "
                "the pre-computed exclusive offsets do not match the actual "
                "write targets, so one-sided writes may overlap",
            )
    if not equivalent_streams(global_.upstreams[0], op.upstreams[1]):
        reporter.emit(
            "MOD012", op, path,
            f"{name}'s global histogram does not reduce the same local "
            "histogram the exchange consumes; window capacities would "
            "disagree with actual contributions",
        )
    if not equivalent_streams(local.upstreams[0], data):
        reporter.emit(
            "MOD012", op, path,
            f"{name} ships one data stream but its histogram counted a "
            "different one; promised region sizes do not bound the actual "
            "writes",
        )


def run(scope: ScopeInfo, reporter: Reporter) -> None:
    """Check communication safety of one scope."""
    paths = scope_paths(scope)
    for op in walk(scope.root):
        if isinstance(op, SharedScan):
            continue
        path = paths[id(op)]
        if isinstance(op, MpiExecutor) and scope.in_cluster:
            reporter.emit(
                "MOD011", op, path,
                "MpiExecutor cannot run inside another MpiExecutor's "
                "nested plan; ranks do not launch sub-clusters",
            )
            continue
        if not isinstance(op, COLLECTIVES):
            continue
        name = type(op).__name__
        if not scope.in_cluster:
            reporter.emit(
                "MOD010", op, path,
                f"{name} runs in a driver-side scope with no MPI "
                "communicator; wrap this part of the plan in an MpiExecutor",
            )
            continue
        if scope.in_nested_map:
            reporter.emit(
                "MOD013", op, path,
                f"{name} sits inside a per-tuple NestedMap scope; its "
                "invocation count depends on this rank's data and may "
                "differ across ranks, deadlocking the collective",
            )
        if isinstance(op, MpiExchange):
            _check_ladder(op, reporter, path, None)
        elif isinstance(op, MpiBroadcast):
            _check_ladder(op, reporter, path, 1)
