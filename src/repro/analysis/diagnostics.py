"""Diagnostics, severities, and the rule registry of the static analyzer.

Every check the analyzer performs is a *rule* with a stable ``MOD0xx``
identifier (catalogued in ``docs/static_analysis.md``), a default severity,
and a one-line summary.  A finding is a :class:`Diagnostic`: the rule, the
severity (usually the rule's default), the offending operator, its path
inside the plan tree, and a human-readable message.

Rules can be silenced globally (``analyze(root, suppress={"MOD023"})``) or
per plan node (``op.suppress("MOD023")`` — see
:meth:`repro.core.operator.Operator.suppress`); suppressions are how plans
record *intentional* deviations, e.g. the join-sequence plans deliberately
shipping uncompressed tuples so both Figure 4 variants use the same wire
format.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

from repro.core.operator import Operator
from repro.core.plan import SharedScan

__all__ = [
    "Severity",
    "Rule",
    "RULES",
    "Diagnostic",
    "Reporter",
    "unwrap",
]


class Severity(IntEnum):
    """How bad a diagnostic is; ``ERROR`` fails verification."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; pick one of "
                f"{[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Rule:
    """One static check, stable across releases."""

    id: str
    name: str
    severity: Severity
    summary: str


#: The rule catalog, keyed by rule id.  ``docs/static_analysis.md`` is the
#: narrative version; ``tests/test_docs_consistency.py``-style drift is
#: prevented by the analysis tests asserting on these ids.
RULES: dict[str, Rule] = {}


def _rule(id: str, name: str, severity: Severity, summary: str) -> Rule:
    rule = Rule(id, name, severity, summary)
    RULES[id] = rule
    return rule


# -- type-flow verification (MOD001–MOD009) -----------------------------------

MOD001 = _rule(
    "MOD001", "type-mismatch", Severity.ERROR,
    "an operator's declared output type disagrees with the type re-inferred "
    "from its upstream edges",
)
MOD002 = _rule(
    "MOD002", "unknown-field", Severity.ERROR,
    "an operator references fields its upstream type does not provide, or "
    "combines upstreams with clashing field names",
)
MOD003 = _rule(
    "MOD003", "collection-mismatch", Severity.ERROR,
    "a field is used as a collection but is an atom (or the wrong physical "
    "collection format), or a wire-format constraint is violated",
)
MOD004 = _rule(
    "MOD004", "histogram-contract", Severity.ERROR,
    "a histogram-consuming operator's histogram upstream does not produce "
    "the canonical ⟨bucket, count⟩ histogram type",
)
MOD005 = _rule(
    "MOD005", "nested-output-contract", Severity.ERROR,
    "a NestedMap nested plan does not end in a materializing operator, so "
    "it cannot be proven to yield exactly one tuple per invocation",
)
MOD006 = _rule(
    "MOD006", "cross-scope-parameter", Severity.ERROR,
    "a ParameterLookup inside an MpiExecutor references a slot bound "
    "outside the worker scope (driver bindings do not reach workers)",
)

# -- communication safety (MOD010–MOD019) -------------------------------------

MOD010 = _rule(
    "MOD010", "comm-outside-cluster", Severity.ERROR,
    "an MPI operator appears in a driver-side scope, outside any "
    "MpiExecutor; it would fail at runtime asking for a communicator",
)
MOD011 = _rule(
    "MOD011", "nested-mpi-executor", Severity.ERROR,
    "an MpiExecutor appears inside another MpiExecutor's nested plan",
)
MOD012 = _rule(
    "MOD012", "exchange-histogram-discipline", Severity.ERROR,
    "an MpiExchange/MpiBroadcast cannot be statically proven race-free: "
    "its histogram ladder does not derive from the exchanged data with the "
    "exchange's own partition function, so one-sided write regions are not "
    "provably disjoint and the window capacity is not derivable",
)
MOD013 = _rule(
    "MOD013", "collective-in-nested-loop", Severity.ERROR,
    "a collective operator appears inside a per-tuple NestedMap scope; the "
    "invocation count is data-dependent and may differ across ranks, "
    "deadlocking the collective",
)

# -- pipeline / materialization lint (MOD020–MOD029) --------------------------

MOD020 = _rule(
    "MOD020", "shared-materialization", Severity.INFO,
    "an operator has several consumers; the plan compiler cuts the DAG "
    "here (SharedScan materialization, or a per-consumer re-scan for base "
    "tables)",
)
MOD021 = _rule(
    "MOD021", "duplicate-subtree", Severity.WARNING,
    "structurally identical cost-bearing subtrees are computed more than "
    "once; reusing one operator instance would share the work through a "
    "single materialization point",
)
MOD022 = _rule(
    "MOD022", "dead-operator", Severity.WARNING,
    "an operator statically does nothing (identity projection) or makes "
    "its whole upstream dead (Limit 0)",
)
MOD023 = _rule(
    "MOD023", "uncompressed-exchange", Severity.INFO,
    "an MpiExchange ships ⟨key, payload⟩ INT64 tuples without radix "
    "compression; packing would halve the network volume (paper §4.1.1)",
)
MOD024 = _rule(
    "MOD024", "degraded-fused-edge", Severity.INFO,
    "a batch-capable operator is consumed row-by-row across a fused "
    "pipeline edge; the consumer's default batches() degrades the "
    "upstream's vectorized kernel to scalar iteration",
)

# -- recovery soundness (MOD030–MOD039) ----------------------------------------

MOD030 = _rule(
    "MOD030", "unprotected-nondeterministic-exchange", Severity.WARNING,
    "a non-deterministic operator feeds an MPI exchange/broadcast with no "
    "materialization point between; a fault-recovery re-execution would "
    "ship different data than the attempt it replaces",
)
MOD031 = _rule(
    "MOD031", "nondeterministic-in-worker", Severity.WARNING,
    "a non-deterministic operator runs inside an MpiExecutor worker scope; "
    "pipeline-stage re-execution after an injected fault cannot reproduce "
    "the lost attempt's results",
)
MOD032 = _rule(
    "MOD032", "uncheckpointable-stage-output", Severity.INFO,
    "an MpiExecutor nested plan does not end in a materializing operator, "
    "so pipeline-level recovery cannot checkpoint the stage output at a "
    "materialization point",
)

# -- runtime advisories (MOD040–MOD049) ----------------------------------------
# Unlike the static rules above these need a measured execution: they run
# over a MetricsSnapshot (repro.analysis.runtime), not over the plan DAG.

MOD040 = _rule(
    "MOD040", "shuffle-amplification", Severity.INFO,
    "the recorded shuffle volume exceeds a configurable multiple of the "
    "plan's input bytes; the exchange is re-shipping data the plan could "
    "have reduced (pre-aggregation, projection pushdown, broadcast of the "
    "small side) before the network partition",
)

# -- runtime sanitizer (MOD050–MOD059) -----------------------------------------
# The second verification layer: these rules fire from the simulated
# substrate itself when a plan runs under ``execute(..., sanitize=True)``
# (repro.analysis.sanitizer).  They carry operator provenance recovered
# from the data-path instrumentation, turning what would otherwise be a
# bare SimulationError (or a silent wrong answer) into a Diagnostic.

MOD050 = _rule(
    "MOD050", "rma-write-set-race", Severity.ERROR,
    "two one-sided puts touched overlapping rows of the same window within "
    "one epoch, or a put landed outside the window's capacity; the epoch "
    "discipline (paper §3.3) that makes RDMA writes safe is violated",
)
MOD051 = _rule(
    "MOD051", "collective-schedule-divergence", Severity.ERROR,
    "ranks issued diverging collective call sequences (different tags at "
    "the same call index, or different call counts); on real MPI this "
    "deadlocks the job instead of failing fast",
)
MOD052 = _rule(
    "MOD052", "window-lifetime", Severity.ERROR,
    "an RMA window was misused across its lifetime: a put was never "
    "completed by a closing fence, remotely-written rows were read before "
    "the epoch's fence, or a window was accessed after its job closed it",
)
MOD053 = _rule(
    "MOD053", "nondeterministic-exchange-payload", Severity.ERROR,
    "replaying the plan shipped different bytes through an exchange "
    "boundary even though every feeding operator claims deterministic=True; "
    "the recovery tier (MOD030/031) is trusting a mislabeled operator",
)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, bound to a plan node."""

    rule: Rule
    severity: Severity
    message: str
    path: str
    operator: str

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def format(self) -> str:
        return (
            f"{self.rule.id} {self.severity} [{self.rule.name}] "
            f"{self.path}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "operator": self.operator,
        }


def unwrap(op: Operator) -> Operator:
    """See through the plan compiler's ``SharedScan`` materialization wrappers.

    Analyses must give the same verdict before and after
    :func:`repro.core.plan.prepare`, which rewrites multi-consumer edges.
    """
    while isinstance(op, SharedScan):
        op = op.upstreams[0]
    return op


class Reporter:
    """Collects diagnostics, honoring global and per-node suppressions."""

    def __init__(self, suppress: Iterable[str] = ()) -> None:
        self.suppressed = frozenset(suppress)
        unknown = self.suppressed - set(RULES)
        if unknown:
            raise ValueError(f"cannot suppress unknown rules {sorted(unknown)}")
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        rule_id: str,
        op: Operator,
        path: str,
        message: str,
        severity: Severity | None = None,
    ) -> None:
        rule = RULES[rule_id]
        if rule_id in self.suppressed or rule_id in op.lint_suppressions:
            return
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=rule.severity if severity is None else severity,
                message=message,
                path=path,
                operator=type(unwrap(op)).__name__,
            )
        )
