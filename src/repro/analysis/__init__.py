"""Static plan analysis: verify operator DAGs before running them.

The sub-operator design gives every Modularis plan a statically known
shape (paper §3.2, §3.4); this package exploits that to find bad plans
*before* execution — type-flow breaks, unsafe MPI communication patterns,
and wasted pipeline work — through a registry of stable ``MOD0xx`` rules
(catalog: ``docs/static_analysis.md``).

Typical use::

    from repro import analysis

    findings = analysis.analyze(plan)          # list[Diagnostic]
    analysis.verify(plan)                      # raises on errors

or from the shell::

    python -m repro lint join groupby examples/ --format json
"""

from repro.analysis.diagnostics import RULES, Diagnostic, Rule, Severity
from repro.analysis.lint import analyze, verify
from repro.analysis.runtime import analyze_runtime

__all__ = [
    "analyze",
    "analyze_runtime",
    "verify",
    "Diagnostic",
    "Rule",
    "RULES",
    "Severity",
]
