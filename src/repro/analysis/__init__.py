"""Static plan analysis: verify operator DAGs before running them.

The sub-operator design gives every Modularis plan a statically known
shape (paper §3.2, §3.4); this package exploits that to find bad plans
*before* execution — type-flow breaks, unsafe MPI communication patterns,
and wasted pipeline work — through a registry of stable ``MOD0xx`` rules
(catalog: ``docs/static_analysis.md``).

Typical use::

    from repro import analysis

    findings = analysis.analyze(plan)          # list[Diagnostic]
    analysis.verify(plan)                      # raises on errors

or from the shell::

    python -m repro lint join groupby examples/ --format json
"""

from repro.analysis.diagnostics import RULES, Diagnostic, Rule, Severity
from repro.analysis.lint import analyze, verify
from repro.analysis.runtime import analyze_runtime
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizerReport,
)
from repro.analysis.symbolic import Verdict, compare_partition_fns, symbolize

__all__ = [
    "analyze",
    "analyze_runtime",
    "compare_partition_fns",
    "symbolize",
    "verify",
    "Diagnostic",
    "Rule",
    "RULES",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "Severity",
    "Verdict",
]
