"""Sanitizer soaks: execute plans with the MOD05x runtime sanitizer armed.

Backs the ``repro sanitize`` CLI subcommand.  A *soak* runs a target plan
under one policy of the chaos matrix twice — once plain, once with
``sanitize=True`` — and demands three things:

* the sanitizer report is **clean** (no MOD050–MOD053 finding and no
  :class:`~repro.analysis.sanitizer.SanitizerError` raised mid-run);
* the sanitized results are **bit-identical** to the unsanitized run
  under the same fault policy (the sanitizer observes, it must never
  perturb);
* the determinism replay actually ran (``replayed`` in the report).

Targets are the four builtin plans (``join``, ``groupby``,
``broadcast_join``, ``join_sequence``) and TPC-H ``q4``/``q12``/``q14``/
``q19``; ``all`` expands to every one of them.  The chaos matrix is the
same vocabulary as ``repro chaos``: fault-free, transient comm faults, a
permanent mid-stage crash (degraded n-1 rerun), and planner-level
memory pressure.
"""

from __future__ import annotations

from repro.core.options import RunOptions
from repro.faults.chaos import (
    _columns_match,
    _frame_columns,
    _vector_columns,
    build_policy,
)

__all__ = ["soak", "matrix_policies", "run_cli", "ALL_TARGETS", "ALL_POLICIES"]

BUILTIN_TARGETS = ("join", "groupby", "broadcast_join", "join_sequence")
TPCH_TARGETS = ("q4", "q12", "q14", "q19")
ALL_TARGETS = BUILTIN_TARGETS + TPCH_TARGETS
ALL_POLICIES = ("clean", "transient", "degrade", "pressure")


def matrix_policies(names, seed: int):
    """Resolve chaos-matrix policy names to ``(name, FaultPolicy | None)``."""
    resolved = []
    for name in names:
        if name == "clean":
            resolved.append((name, None))
        elif name == "transient":
            resolved.append((name, build_policy(seed)))
        elif name == "degrade":
            resolved.append(
                (name, build_policy(seed, crash_rank=1, crash_after=4,
                                    permanent=True))
            )
        elif name == "pressure":
            resolved.append((name, build_policy(seed, memory_pressure=True)))
        else:
            raise ValueError(
                f"unknown sanitize policy {name!r}; pick from {ALL_POLICIES}"
            )
    return resolved


def _run_builtin(name, machines, log2_tuples, mode, policy) -> dict:
    from repro.core.plans import (
        build_broadcast_join,
        build_distributed_groupby,
        build_distributed_join,
        build_join_sequence,
    )
    from repro.mpi.cluster import SimCluster
    from repro.workloads import (
        make_cascade_relations,
        make_groupby_table,
        make_join_relations,
    )

    cluster = SimCluster(machines)
    n_tuples = 1 << log2_tuples
    if name == "join":
        workload = make_join_relations(n_tuples)
        plan = build_distributed_join(
            cluster,
            workload.left.element_type,
            workload.right.element_type,
            key_bits=workload.key_bits,
        )
        run = lambda sanitize: plan.run(
            workload.left, workload.right, mode=mode, faults=policy,
            sanitize=sanitize,
        )
        extract = plan.matches
    elif name == "broadcast_join":
        workload = make_join_relations(n_tuples)
        plan = build_broadcast_join(
            cluster,
            workload.left.element_type,
            workload.right.element_type,
        )
        run = lambda sanitize: plan.run(
            workload.left, workload.right, mode=mode, faults=policy,
            sanitize=sanitize,
        )
        extract = plan.matches
    elif name == "groupby":
        workload = make_groupby_table(n_tuples)
        plan = build_distributed_groupby(
            cluster, workload.table.element_type, key_bits=workload.key_bits
        )
        run = lambda sanitize: plan.run(
            workload.table, mode=mode, faults=policy, sanitize=sanitize
        )
        extract = plan.groups
    elif name == "join_sequence":
        relations, _ = make_cascade_relations(3, n_tuples)
        plan = build_join_sequence(cluster, [r.element_type for r in relations])
        run = lambda sanitize: plan.run(
            relations, mode=mode, faults=policy, sanitize=sanitize
        )
        extract = plan.matches
    else:  # pragma: no cover - guarded by the CLI choices
        raise ValueError(f"unknown builtin target {name!r}")

    plain = run(False)
    sanitized = run(True)
    identical = _columns_match(
        *_vector_columns(extract(plain)),
        *_vector_columns(extract(sanitized)),
        ordered=True,
    )
    return _verdict(name, mode, policy, sanitized, identical)


def _run_tpch(name, machines, sf, mode, strategy, policy) -> dict:
    from repro.mpi.cluster import SimCluster
    from repro.relational import lower_to_modularis
    from repro.tpch import ALL_QUERIES, load_catalog

    qnum = int(name[1:])
    catalog = load_catalog(scale_factor=sf)
    query = ALL_QUERIES[qnum]()
    options = RunOptions(mode=mode, faults=policy)
    plan = lower_to_modularis(
        query.plan, catalog, SimCluster(machines), join_strategy=strategy,
        options=options,
    )
    plain = plan.run(catalog, options)
    sanitized = plan.run(catalog, options.replace(sanitize=True))
    identical = _columns_match(
        *_frame_columns(plan.result_frame(plain)),
        *_frame_columns(plan.result_frame(sanitized)),
        ordered=True,
    )
    verdict = _verdict(name, mode, policy, sanitized, identical)
    verdict["strategy"] = plan.strategy
    if plan.degraded_from is not None:
        verdict["degraded_from"] = plan.degraded_from
    return verdict


def _verdict(name, mode, policy, sanitized, identical) -> dict:
    report = sanitized.sanitizer
    return {
        "target": name,
        "mode": mode,
        "seed": policy.seed if policy is not None else None,
        "ok": bool(report is not None and report.clean and identical),
        "identical": bool(identical),
        "sanitizer": report.to_dict() if report is not None else None,
        "simulated_time": sanitized.simulated_time,
    }


def soak(
    target: str,
    policy,
    machines: int = 4,
    sf: float = 0.005,
    log2_tuples: int = 10,
    mode: str = "fused",
    strategy: str = "exchange",
) -> dict:
    """Run one target sanitized under ``policy``; return a verdict dict.

    A sanitizer finding raised mid-run (MOD050–MOD052) propagates as a
    :class:`SanitizerError` — shipped plans must never trigger one, so
    the caller treats the exception as a failed soak.
    """
    if target in BUILTIN_TARGETS:
        return _run_builtin(target, machines, log2_tuples, mode, policy)
    if target in TPCH_TARGETS:
        return _run_tpch(target, machines, sf, mode, strategy, policy)
    raise ValueError(
        f"unknown sanitize target {target!r}; pick one of {ALL_TARGETS} or 'all'"
    )


# -- the ``repro sanitize`` command body ----------------------------------------


def run_cli(args) -> int:
    """Body of ``repro sanitize`` (argparse namespace in, exit code out)."""
    import json
    import sys

    from repro.analysis.sanitizer import SanitizerError

    targets: list[str] = []
    for target in args.targets:
        if target == "all":
            targets.extend(t for t in ALL_TARGETS if t not in targets)
        elif target in ALL_TARGETS:
            if target not in targets:
                targets.append(target)
        else:
            print(
                f"error: unknown sanitize target {target!r}; pick from "
                f"{', '.join(ALL_TARGETS)} or 'all'",
                file=sys.stderr,
            )
            return 2

    policies = matrix_policies(args.policies or list(ALL_POLICIES), args.seed)
    verdicts: list[dict] = []
    failures = 0
    for target in targets:
        for policy_name, policy in policies:
            try:
                verdict = soak(
                    target,
                    policy,
                    machines=args.machines,
                    sf=args.sf,
                    log2_tuples=args.log2_tuples,
                    mode=args.mode,
                    strategy=args.strategy,
                )
            except SanitizerError as exc:
                verdict = {
                    "target": target,
                    "mode": args.mode,
                    "seed": policy.seed if policy is not None else None,
                    "ok": False,
                    "identical": False,
                    "error": str(exc),
                    "sanitizer": None,
                    "simulated_time": None,
                }
            verdict["policy"] = policy_name
            verdicts.append(verdict)
            if not verdict["ok"]:
                failures += 1
            if args.format == "text":
                status = "OK " if verdict["ok"] else "FAIL"
                report = verdict.get("sanitizer")
                if report is not None:
                    detail = (
                        f"{report['puts_checked']} puts "
                        f"{report['collectives_checked']} collectives "
                        f"{report['windows_tracked']} windows"
                    )
                    if report["diagnostics"]:
                        detail += f"  findings={len(report['diagnostics'])}"
                else:
                    detail = verdict.get("error", "no report")
                print(f"{status} {target:<14} policy={policy_name:<9} {detail}")

    if args.format == "json":
        def scalar(value):
            item = getattr(value, "item", None)
            if callable(item):
                return item()
            raise TypeError(f"not JSON serializable: {value!r}")

        print(
            json.dumps(
                {
                    "summary": {
                        "targets": targets,
                        "policies": [name for name, _ in policies],
                        "soaks": len(verdicts),
                        "ok": len(verdicts) - failures,
                        "failures": failures,
                    },
                    "soaks": verdicts,
                },
                indent=2,
                default=scalar,
            )
        )
    else:
        total = len(verdicts)
        print(
            f"\nsanitize soak: {total - failures}/{total} clean and "
            f"bit-identical under the chaos matrix"
        )
        if failures:
            print(
                f"ERROR: {failures} soak(s) had sanitizer findings or "
                "diverging results",
                file=sys.stderr,
            )
    return 1 if failures else 0
