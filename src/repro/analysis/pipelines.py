"""Pipeline/materialization lint pass (rules MOD020–MOD024).

Reports how the plan compiler will cut the DAG into pipelines (§3.4) and
where the plan wastes work: multi-consumer nodes that force a
materialization point (MOD020), structurally identical subtrees computed
twice where one ``SharedScan`` would do (MOD021), operators that are
statically dead (MOD022), exchanges that forgo the paper's radix
compression although their wire format qualifies (MOD023), and fused
pipeline edges where a consumer without a ``batches()`` implementation
degrades a vectorized upstream to row-at-a-time iteration (MOD024).

Everything here is advisory — nothing in this pass is an error.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Reporter, Severity, unwrap
from repro.analysis.structure import ScopeInfo, plan_signature, scope_paths
from repro.core.functions import RadixPartition
from repro.core.operator import Operator
from repro.core.operators.chunk_ops import ChunkScan
from repro.core.operators.limit_op import Limit
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.parameter_lookup import ParameterLookup
from repro.core.operators.projection import Projection
from repro.core.operators.row_scan import RowScan
from repro.core.plan import SharedScan, _edge_is_fused, _is_base_scan_chain, walk
from repro.types.atoms import INT64

__all__ = ["run"]

#: Operators whose repetition costs (almost) nothing — re-scanning a base
#: table is how the plan compiler itself handles shared scan chains.
_CHEAP = (RowScan, ChunkScan, Projection, ParameterLookup, SharedScan)


def _has_costly_op(root: Operator) -> bool:
    return any(not isinstance(op, _CHEAP) for op in walk(root))


def _declared_batches(cls: type):
    """The ``batches`` implementation ``cls`` declares below ``Operator``.

    Returns ``None`` when the class just inherits the default (it never
    chose a fused strategy); an explicit ``batches = Operator.batches``
    alias counts as a declaration — the class has *opted out* of
    vectorization on purpose, which silences MOD024.
    """
    for klass in cls.__mro__:
        if klass is Operator:
            return None
        if "batches" in klass.__dict__:
            return klass.__dict__["batches"]
    return None


def _consumer_edges(scope: ScopeInfo):
    """Yield ``(consumer, unwrapped_target)`` for every edge of the scope.

    ``SharedScan`` wrappers are transparent on both sides, so the edge set
    (and hence every verdict below) is identical before and after
    ``prepare`` rewrites the plan.
    """
    for op in walk(scope.root):
        if isinstance(op, SharedScan):
            continue
        for up in op.upstreams:
            yield op, unwrap(up)


def run(scope: ScopeInfo, reporter: Reporter) -> None:
    paths = scope_paths(scope)

    # MOD020 — materialization points at multi-consumer nodes.
    consumers: dict[int, list[Operator]] = {}
    targets: dict[int, Operator] = {}
    for consumer, target in _consumer_edges(scope):
        consumers.setdefault(id(target), []).append(consumer)
        targets[id(target)] = target
    for key, fans in consumers.items():
        target = targets[key]
        if len(fans) < 2 or isinstance(target, ParameterLookup):
            continue
        if _is_base_scan_chain(target):
            how = (
                "a base-table scan chain: the plan compiler re-scans the "
                "table once per consumer instead of materializing"
            )
        else:
            how = (
                "the plan compiler cuts the DAG here and materializes the "
                "stream once behind a SharedScan"
            )
        reporter.emit(
            "MOD020", target, paths[id(target)],
            f"{type(target).__name__} feeds {len(fans)} consumers "
            f"({', '.join(sorted(type(c).__name__ for c in fans))}); {how}",
        )

    # MOD021 — duplicated cost-bearing subtrees.
    groups: dict[tuple, dict[int, Operator]] = {}
    for op in walk(scope.root):
        target = unwrap(op)
        groups.setdefault(plan_signature(target), {})[id(target)] = target
    duplicated = {
        oid
        for members in groups.values()
        if len(members) > 1
        for oid in members
    }
    for signature, members in groups.items():
        if len(members) < 2:
            continue
        ops = list(members.values())
        if not _has_costly_op(ops[0]):
            continue
        # Report only maximal duplicated subtrees: skip groups whose every
        # member is itself consumed by a duplicated operator (the inner
        # repetition is implied by the outer one).
        maximal = False
        for member in ops:
            member_consumers = consumers.get(id(member), [])
            if not member_consumers and member is unwrap(scope.root):
                maximal = True
            for consumer in member_consumers:
                if id(unwrap(consumer)) not in duplicated:
                    maximal = True
        if not maximal:
            continue
        first = ops[0]
        where = ", ".join(paths[id(m)] for m in ops[1:])
        reporter.emit(
            "MOD021", first, paths[id(first)],
            f"this {type(first).__name__} subtree is computed "
            f"{len(ops)} times (also at {where}); reuse one operator "
            "instance so the plan compiler shares it through a single "
            "materialization point",
        )

    # MOD022 / MOD023 — per-operator lints.
    for op in walk(scope.root):
        if isinstance(op, SharedScan):
            continue
        path = paths[id(op)]
        if isinstance(op, Projection):
            if op.fields == op.upstreams[0].output_type.field_names:
                reporter.emit(
                    "MOD022", op, path,
                    "identity projection: it keeps every upstream field in "
                    "order and can be removed",
                    severity=Severity.INFO,
                )
        elif isinstance(op, Limit) and op.n == 0:
            reporter.emit(
                "MOD022", op, path,
                "Limit 0 yields nothing and makes its whole upstream dead",
            )
        elif isinstance(op, MpiExchange) and op.compression is None:
            wire = op.upstreams[0].output_type
            fn = op.partition_fn
            if (
                len(wire) == 2
                and all(wire[f] == INT64 for f in wire.field_names)
                and isinstance(fn, RadixPartition)
                and fn.shift == 0
            ):
                reporter.emit(
                    "MOD023", op, path,
                    "this exchange ships ⟨key, payload⟩ INT64 tuples over a "
                    "low-bit radix partitioning but does not compress; "
                    "RadixCompression would pack each pair into one word "
                    "and halve the network volume (paper §4.1.1)",
                )

    # MOD024 — fused edges degraded to row-at-a-time iteration.
    for op in walk(scope.root):
        if isinstance(op, SharedScan) or _declared_batches(type(op)) is not None:
            continue
        for position, up in enumerate(op.upstreams):
            target = unwrap(up)
            if not _edge_is_fused(op, position, target):
                continue
            impl = _declared_batches(type(target))
            if impl is None or impl is Operator.batches:
                continue
            reporter.emit(
                "MOD024", op, paths[id(op)],
                f"{type(target).__name__} has a vectorized batches() kernel "
                f"but {type(op).__name__} consumes it row-by-row on this "
                "fused edge; implement batches() on the consumer (or alias "
                "`batches = Operator.batches` to record the scalar choice)",
            )
