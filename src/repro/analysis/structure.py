"""Plan traversal and structural equivalence for the static analyzer.

Two concerns shared by every analysis pass live here:

* **Scopes.**  A plan is a tree of *scopes*: the driver plan, plus one
  nested scope per ``NestedMap``/``MpiExecutor`` nested plan.  Each scope
  carries the facts the passes reason about — whether it executes inside an
  MPI worker, whether it sits under a per-tuple ``NestedMap`` loop, and
  which parameter slots are visible to it.

* **Structural equivalence.**  The plan compiler
  (:func:`repro.core.plan.prepare`) rewrites multi-consumer edges: shared
  operators get wrapped in ``SharedScan`` and base-table scan chains are
  *cloned* per consumer.  Analyses must give the same verdict before and
  after that rewrite, so "the same data stream" cannot mean object
  identity — :func:`equivalent_streams` compares signatures that see
  through ``SharedScan`` and match clones of the same chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.operator import Operator
from repro.core.operators.build_probe import BuildProbe
from repro.core.operators.chunk_ops import ChunkScan, MaterializeChunks
from repro.core.operators.filter_op import Filter
from repro.core.operators.limit_op import Limit
from repro.core.operators.local_histogram import LocalHistogram
from repro.core.operators.local_partitioning import LocalPartitioning
from repro.core.operators.map_ops import Map, ParametrizedMap
from repro.core.operators.materialize import MaterializeRowVector
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.operators.mpi_histogram import MpiHistogram
from repro.core.operators.nested_map import NestedMap
from repro.core.operators.parameter_lookup import ParameterLookup
from repro.core.operators.projection import Projection
from repro.core.operators.reduce_ops import Reduce, ReduceByKey
from repro.core.operators.row_scan import RowScan
from repro.core.operators.sort_ops import LocalSort, MergeJoin
from repro.core.plan import SharedScan, walk
from repro.analysis.diagnostics import unwrap

__all__ = [
    "ScopeInfo",
    "iter_scopes",
    "scope_paths",
    "plan_signature",
    "partition_fn_signature",
    "same_partition_fn",
    "equivalent_streams",
]


@dataclass(frozen=True)
class ScopeInfo:
    """One scope of a plan: the driver plan or one nested plan."""

    root: Operator
    #: The NestedMap/MpiExecutor owning this nested plan; None at the top.
    owner: Operator | None
    #: Plan-node path of the scope root (diagnostic prefix).
    path: str
    #: True inside an MpiExecutor's nested plan (runs on MPI workers).
    in_cluster: bool
    #: True inside a per-tuple NestedMap loop (invocation count is
    #: data-dependent).
    in_nested_map: bool
    #: Slot ids introduced since entering the innermost MpiExecutor scope —
    #: the only bindings a worker's fresh context can see.
    cluster_slots: frozenset[int]


def iter_scopes(root: Operator, path: str = "plan") -> Iterator[ScopeInfo]:
    """Yield every scope of the plan, outermost first (pre-order)."""
    pending = [ScopeInfo(root, None, path, False, False, frozenset())]
    while pending:
        scope = pending.pop(0)
        yield scope
        paths = scope_paths(scope)
        for op in walk(scope.root):
            for inner in op.nested_roots():
                inner_path = f"{paths[id(op)]}@inner"
                if isinstance(op, MpiExecutor):
                    pending.append(
                        ScopeInfo(
                            inner, op, inner_path,
                            in_cluster=True,
                            in_nested_map=False,
                            cluster_slots=frozenset({op.slot.id}),
                        )
                    )
                elif isinstance(op, NestedMap):
                    slots = (
                        scope.cluster_slots | {op.slot.id}
                        if scope.in_cluster
                        else frozenset()
                    )
                    pending.append(
                        ScopeInfo(
                            inner, op, inner_path,
                            in_cluster=scope.in_cluster,
                            in_nested_map=True,
                            cluster_slots=slots,
                        )
                    )
                else:  # pragma: no cover - no other operator nests plans
                    pending.append(
                        ScopeInfo(
                            inner, op, inner_path,
                            scope.in_cluster, scope.in_nested_map,
                            scope.cluster_slots,
                        )
                    )


def scope_paths(scope: ScopeInfo) -> dict[int, str]:
    """Path of every operator in one scope, keyed by ``id(op)``.

    ``SharedScan`` wrappers are skipped so paths are stable across
    ``prepare``; a node shared by several consumers keeps its first path.
    """
    paths: dict[int, str] = {}

    def visit(op: Operator, path: str) -> None:
        if isinstance(op, SharedScan):
            # Transparent: the wrapped operator takes the wrapper's place.
            paths.setdefault(id(op), path)
            visit(op.upstreams[0], path)
            return
        segment = f"{path}/{type(op).__name__}"
        if id(op) in paths:
            return
        paths[id(op)] = segment
        for pos, up in enumerate(op.upstreams):
            visit(up, f"{segment}.{pos}")

    visit(scope.root, scope.path)
    return paths


# -- structural signatures ------------------------------------------------------

#: Per-class attributes that define an operator beyond its upstream shape.
#: Function objects are compared by identity: two separately constructed
#: UDFs are never assumed equal (conservative).
def _own_attrs(op: Operator) -> tuple:
    if isinstance(op, RowScan):
        return (op.field, op.shard_by_rank)
    if isinstance(op, ChunkScan):
        return (op.field,)
    if isinstance(op, Projection):
        return (op.fields,)
    if isinstance(op, ParameterLookup):
        return (op.slot.id,)
    if isinstance(op, LocalHistogram):
        return (partition_fn_signature(op.bucket_fn),)
    if isinstance(op, LocalPartitioning):
        return (
            partition_fn_signature(op.partition_fn), op.id_field, op.data_field
        )
    if isinstance(op, MpiExchange):
        return (
            partition_fn_signature(op.partition_fn),
            op.id_field,
            op.data_field,
            op.compression,
        )
    if isinstance(op, MpiHistogram):
        return (op.n_buckets,)
    if isinstance(op, (Map, ParametrizedMap)):
        return (id(op.fn),)
    if isinstance(op, Filter):
        return (id(op.predicate),)
    if isinstance(op, Reduce):
        return (id(op.fn),)
    if isinstance(op, ReduceByKey):
        return (op.key_fields, id(op.fn))
    if isinstance(op, BuildProbe):
        return (op.keys, op.join_type)
    if isinstance(op, MergeJoin):
        return (op.key, op.join_type)
    if isinstance(op, LocalSort):
        return (op.keys, op.descending)
    if isinstance(op, Limit):
        return (op.n,)
    if isinstance(op, MaterializeRowVector):
        return (op.field,)
    if isinstance(op, MaterializeChunks):
        return (op.field, op.chunk_rows)
    if isinstance(op, (NestedMap, MpiExecutor)):
        # Nested slots get globally unique ids, so two separately built
        # nested plans never compare equal — conservative by construction.
        return (op.slot.id,)
    if type(op).__name__ in ("Zip", "CartesianProduct", "MpiBroadcast"):
        return ()
    # Unknown operator class: only identical objects are equivalent.
    return (id(op),)


def plan_signature(op: Operator) -> tuple:
    """A hashable structural fingerprint of the subtree rooted at ``op``.

    Equal signatures mean the subtrees provably compute the same stream
    (same operator classes, same static parameters, same slot references);
    ``SharedScan`` wrappers are transparent.
    """
    op = unwrap(op)
    return (
        type(op).__name__,
        _own_attrs(op),
        tuple(plan_signature(up) for up in op.upstreams),
    )


def partition_fn_signature(fn: object) -> tuple:
    """Equivalence key of a partition function.

    Two functions are interchangeable iff they provably map every tuple to
    the same bucket: same class and same static parameters.  Arbitrary
    callables are compared by identity.
    """
    from repro.core.functions import (
        CallablePartition,
        HashPartition,
        RadixPartition,
    )

    if isinstance(fn, RadixPartition):
        return ("radix", fn.key_field, fn.n_partitions, fn.shift)
    if isinstance(fn, HashPartition):
        return ("hash", fn.key_field, fn.n_partitions, fn.salt)
    if isinstance(fn, CallablePartition):
        return ("callable", id(fn.fn), fn.n_partitions)
    n = getattr(fn, "n_partitions", None)
    return ("opaque", id(fn), n)


def same_partition_fn(a: object, b: object) -> bool:
    return a is b or partition_fn_signature(a) == partition_fn_signature(b)


def equivalent_streams(a: Operator, b: Operator) -> bool:
    """True if ``a`` and ``b`` provably produce the same tuple stream."""
    a, b = unwrap(a), unwrap(b)
    return a is b or plan_signature(a) == plan_signature(b)
