"""Symbolic comparison of partition functions for the MOD012 check.

The structural check (:func:`repro.analysis.structure.same_partition_fn`)
compares partition functions by class and constructor arguments.  That is
sound but has holes in both directions:

* **False positives.**  Two functions can be structurally different yet
  provably map every key to the same bucket — e.g. ``HashPartition`` salts
  that select the same multiplier, or any two functions with a fan-out of
  one.  The structural check rejects such ladders even though the
  one-sided write regions they derive are exactly disjoint.

* **False negatives.**  A subclass that inherits a trusted class's
  constructor signature but overrides ``__call__``/``map_batch`` compares
  structurally *equal* to its base, so a semantically overlapping ladder
  slips through and only surfaces as a mid-epoch ``SimulationError``.

This module closes both holes with a small abstract interpretation over a
single integer key:

* ``symbolize`` maps *trusted* partition functions (the exact classes in
  :mod:`repro.core.functions`, not subclasses) to canonical forms —
  ``("bits", field, shift, width)`` for radix ranges (``(k >> shift)
  mod 2**width``), ``("hash", field, n, multiplier)`` with the salt
  resolved to its multiplier, ``("const", 0)`` for fan-out one.  Equal
  canonical forms *prove* equivalence; unequal forms over the same key
  field yield a concrete witness key by probing the forms symbolically.

* For opaque functions (subclasses, ``CallablePartition``, arbitrary
  callables) a deterministic sampling pass can still *refute* equivalence
  with a concrete witness.  Sampling never proves equivalence — agreement
  on every probe returns ``UNKNOWN`` and the caller falls back to the
  conservative structural verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.functions import (
    CallablePartition,
    HashPartition,
    PartitionFunction,
    RadixPartition,
)

__all__ = ["Verdict", "symbolize", "describe", "compare_partition_fns"]

_M64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class Verdict:
    """Three-valued outcome of a partition-function comparison."""

    kind: str  # "equivalent" | "distinct" | "unknown"
    reason: str
    #: A concrete key on which the functions disagree (refutations only).
    witness: int | None = None

    @property
    def equivalent(self) -> bool:
        return self.kind == "equivalent"

    @property
    def distinct(self) -> bool:
        return self.kind == "distinct"

    @property
    def unknown(self) -> bool:
        return self.kind == "unknown"


def _equivalent(reason: str) -> Verdict:
    return Verdict("equivalent", reason)


def _distinct(reason: str, witness: int | None = None) -> Verdict:
    return Verdict("distinct", reason, witness)


def _unknown(reason: str) -> Verdict:
    return Verdict("unknown", reason)


# -- canonical forms -----------------------------------------------------------

def symbolize(fn: object) -> tuple | None:
    """Canonical form of a *trusted* partition function, else ``None``.

    Only the exact classes from :mod:`repro.core.functions` are trusted:
    a subclass may override ``__call__``/``map_batch`` to compute anything
    while keeping the base constructor signature, so it falls through to
    the sampling path.
    """
    if type(fn) is RadixPartition:
        if fn.n_partitions == 1:
            return ("const", 0)
        return ("bits", fn.key_field, fn.shift, fn.fanout_bits)
    if type(fn) is HashPartition:
        if fn.n_partitions == 1:
            return ("const", 0)
        return ("hash", fn.key_field, fn.n_partitions, fn._multiplier)
    if type(fn) is CallablePartition and fn.n_partitions == 1:
        # Range-validated at call time: a fan-out of one can only yield 0.
        return ("const", 0)
    return None


def describe(canon: tuple) -> str:
    kind = canon[0]
    if kind == "const":
        return "the constant bucket 0"
    if kind == "bits":
        _, field, shift, width = canon
        return f"key bits [{shift}, {shift + width}) of field {field!r}"
    _, field, n, multiplier = canon
    return (
        f"multiplicative hash of field {field!r} "
        f"(multiplier {multiplier:#x}, mod {n})"
    )


def _eval_canonical(canon: tuple, key: int) -> int:
    kind = canon[0]
    if kind == "const":
        return 0
    if kind == "bits":
        _, _field, shift, width = canon
        return (key >> shift) & ((1 << width) - 1)
    _, _field, n, multiplier = canon
    mixed = ((key & _M64) * multiplier) & _M64
    return (mixed >> 33) % n


def _key_field(canon: tuple) -> str | None:
    return canon[1] if canon[0] in ("bits", "hash") else None


#: Deterministic probe keys: small ints, powers of two and their
#: neighbours (the boundaries radix ranges care about), a few large mixed
#: constants, and negatives (int64 shifts are arithmetic).
_PROBE_KEYS: tuple[int, ...] = tuple(
    sorted(
        set(range(17))
        | {1 << i for i in range(1, 48)}
        | {(1 << i) - 1 for i in range(1, 48)}
        | {(1 << i) + 1 for i in range(1, 48)}
        | {-1, -2, -17, -(1 << 20), 987654321, 1234567891011, 0x9E3779B9}
    )
)


# -- sampling refutation -------------------------------------------------------

def _probe_row_width(fn: object) -> int:
    pos = getattr(fn, "_key_pos", None)
    return pos + 1 if isinstance(pos, int) else 0


def _sample_refute(a: object, b: object) -> tuple[int, int, int] | None:
    """A ``(key, bucket_a, bucket_b)`` disagreement witness, or ``None``.

    Probes both functions on rows whose every field holds the same key, so
    any bound key position sees the probe value.  Errors (unbound
    functions, callables indexing past the row) make a probe inconclusive
    rather than a finding — sampling only ever *refutes*.
    """
    width = max(_probe_row_width(a), _probe_row_width(b), 8)
    for key in _PROBE_KEYS:
        row = (key,) * width
        try:
            bucket_a = a(row)
            bucket_b = b(row)
        except Exception:
            continue
        if bucket_a != bucket_b:
            return key, bucket_a, bucket_b
    return None


# -- the comparison ------------------------------------------------------------

def compare_partition_fns(a: object, b: object) -> Verdict:
    """Prove, refute, or give up on ``a`` and ``b`` mapping keys alike.

    ``EQUIVALENT`` and ``DISTINCT`` verdicts are semantic proofs (the
    latter carrying a concrete witness key where possible); ``UNKNOWN``
    means the caller should fall back to the structural comparison.
    """
    if a is b:
        return _equivalent("same function object")
    canon_a, canon_b = symbolize(a), symbolize(b)
    if canon_a is not None and canon_b is not None:
        if canon_a == canon_b:
            return _equivalent(
                f"both compute {describe(canon_a)}"
            )
        field_a, field_b = _key_field(canon_a), _key_field(canon_b)
        if field_a is not None and field_b is not None and field_a != field_b:
            # Pointwise probing cannot separate functions keyed on
            # different fields; stay conservative.
            return _unknown(
                f"partition on different key fields ({field_a!r} vs {field_b!r})"
            )
        for key in _PROBE_KEYS:
            bucket_a = _eval_canonical(canon_a, key)
            bucket_b = _eval_canonical(canon_b, key)
            if bucket_a != bucket_b:
                return _distinct(
                    f"key {key} lands in bucket {bucket_a} under "
                    f"{describe(canon_a)} but bucket {bucket_b} under "
                    f"{describe(canon_b)}",
                    witness=key,
                )
        return _unknown("canonical forms differ but no witness key found")
    if isinstance(a, PartitionFunction) or isinstance(b, PartitionFunction):
        witness = _sample_refute(a, b)
        if witness is not None:
            key, bucket_a, bucket_b = witness
            return _distinct(
                f"key {key} lands in bucket {bucket_a} under {a!r} but "
                f"bucket {bucket_b} under {b!r}",
                witness=key,
            )
    return _unknown("no canonical form and sampling found no disagreement")
