"""The runtime sanitizer: MOD050–MOD053 checks on the simulated substrate.

The static analyzer proves what it can from the plan DAG; this module is
the second verification layer, watching the *execution* itself.  Under
``execute(..., sanitize=True)`` a :class:`Sanitizer` rides on the
execution context and hooks the simulated MPI substrate:

* **MOD050 — RMA write-set tracker.**  Every one-sided put is recorded as
  ``(epoch, target rank, offset range)`` with the operator that issued it.
  Overlapping writes from different ranks within one epoch, and puts
  outside a window's capacity or element type, raise a
  :class:`SanitizerError` carrying a rich
  :class:`~repro.analysis.diagnostics.Diagnostic` — naming both offending
  operators — instead of the substrate's bare ``SimulationError``.

* **MOD051 — collective-schedule recorder.**  Each rank's sequence of
  collective calls is recorded; a tag mismatch at one call index, or a
  rank finishing while a peer has already issued a call it will never
  match, is reported as the would-be deadlock it is, naming the first
  diverging rank and operator.

* **MOD052 — window-lifetime checker.**  Puts never completed by a
  closing fence, reads of remotely-written rows before the epoch's fence,
  and any access to a window after its job closed it.

* **MOD053 — determinism sanitizer.**  Put payloads are digested per
  window; ``execute`` replays the plan under an identical fresh context
  and diffs the write sets at every exchange boundary.  A divergence on a
  window fed only by ``deterministic=True`` operators means MOD030/031
  are trusting a mislabeled operator; windows fed by a *declared*
  non-deterministic operator are exempt (that case is the MOD03x
  warnings' territory).

Operator provenance comes from the data-path instrumentation
(:func:`repro.core.operator._observe_data_path`): each thread keeps a
stack of the operators whose generators are currently executing, so a
substrate hook can name the innermost active operator.

Findings land in a :class:`SanitizerReport` on the
:class:`~repro.core.executor.ExecutionReport` (and in EXPLAIN ANALYZE);
violations of the raising checks surface as :class:`SanitizerError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.diagnostics import RULES, Diagnostic
from repro.core.plan import walk
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operator import Operator
    from repro.mpi.window import Window
    from repro.types.collections import RowVector

__all__ = ["Sanitizer", "SanitizerJob", "SanitizerError", "SanitizerReport"]


class SanitizerError(SimulationError):
    """A sanitizer check failed; carries the structured finding."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.format())
        self.diagnostic = diagnostic


@dataclass
class SanitizerReport:
    """What one sanitized execution checked, and what it found."""

    puts_checked: int = 0
    collectives_checked: int = 0
    windows_tracked: int = 0
    epochs_closed: int = 0
    #: True when the determinism replay (MOD053) ran.
    replayed: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def render(self) -> str:
        header = (
            f"sanitizer: {self.puts_checked} puts, "
            f"{self.collectives_checked} collectives, "
            f"{self.windows_tracked} windows, "
            f"{self.epochs_closed} epochs checked"
        )
        if self.replayed:
            header += "; determinism replay diffed"
        if self.clean:
            return header + "; clean"
        lines = [header + f"; {len(self.diagnostics)} finding(s):"]
        lines.extend("  " + d.format() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "puts_checked": self.puts_checked,
            "collectives_checked": self.collectives_checked,
            "windows_tracked": self.windows_tracked,
            "epochs_closed": self.epochs_closed,
            "replayed": self.replayed,
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _provenance(op: "Operator | None") -> str:
    return op.label() if op is not None else "<outside any operator>"


def _diagnostic(rule_id: str, op: "Operator | None", message: str) -> Diagnostic:
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule,
        severity=rule.severity,
        message=message,
        path=f"runtime/{_provenance(op)}",
        operator=type(op).__name__ if op is not None else "<substrate>",
    )


def _digest(data: "RowVector") -> int:
    """Within-process content fingerprint of one put's payload."""
    parts = []
    for col in data.columns:
        col = np.asarray(col)
        if col.dtype == object:
            parts.append(hash(tuple(col.tolist())))
        else:
            parts.append(hash(col.tobytes()))
    return hash(tuple(parts))


def _feeds_nondeterminism(op: "Operator | None") -> bool:
    """Whether any operator in ``op``'s upstream cone declares itself
    non-deterministic — those windows are MOD030/031's problem, not
    MOD053's."""
    if op is None:
        return False
    return any(not node.deterministic for node in walk(op))


class _WindowState:
    """Sanitizer-side lifetime and write-set state of one RMA window."""

    __slots__ = (
        "key",
        "owner_rank",
        "capacity",
        "creator",
        "nondet_feed",
        "epoch",
        "epoch_writes",
        "unfenced_puts",
        "closed",
    )

    def __init__(
        self,
        key: tuple,
        owner_rank: int,
        capacity: int,
        creator: "Operator | None",
        nondet_feed: bool,
    ) -> None:
        self.key = key
        self.owner_rank = owner_rank
        self.capacity = capacity
        self.creator = creator
        self.nondet_feed = nondet_feed
        self.epoch = 0
        #: ``(start, stop, source_rank, op_label)`` intervals this epoch.
        self.epoch_writes: list[tuple[int, int, int, str]] = []
        self.unfenced_puts = 0
        self.closed = False


class Sanitizer:
    """One sanitized execution's recorder, shared by driver and all jobs.

    Thread-compatible by construction: the provenance stack is
    thread-local, cross-rank state lives in per-job objects behind their
    own lock, and jobs are created sequentially on the driver (which is
    what makes window keys — and therefore the MOD053 replay diff —
    deterministic).
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._job_seq = 0
        self.puts_checked = 0
        self.collectives_checked = 0
        self.windows_tracked = 0
        self.epochs_closed = 0
        #: window key -> sorted-comparable put records
        #: ``(epoch, offset, stop, source_rank, digest)``.
        self.write_log: dict[tuple, list[tuple]] = {}
        #: window key -> (creator label, creator type, nondet_feed).
        self.window_meta: dict[tuple, tuple[str, str, bool]] = {}

    # -- operator provenance ------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_op(self) -> "Operator | None":
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def track(self, op: "Operator", iterator):
        """Wrap one data-path activation so substrate hooks can name ``op``.

        The stack manipulation runs on whichever thread pulls the
        generator, so the innermost *currently executing* operator of each
        rank thread is always on top of that thread's stack.
        """
        stack = self._stack()
        while True:
            stack.append(op)
            try:
                item = next(iterator)
            except StopIteration:
                return
            finally:
                stack.pop()
            yield item

    # -- job lifecycle -------------------------------------------------------

    def job(self, n_ranks: int) -> "SanitizerJob":
        """Per-MPI-job recorder; one per cluster dispatch attempt."""
        with self._lock:
            seq = self._job_seq
            self._job_seq += 1
        return SanitizerJob(self, seq, n_ranks)

    # -- determinism log (MOD053) --------------------------------------------

    def _record_put(
        self,
        key: tuple,
        epoch: int,
        offset: int,
        stop: int,
        source_rank: int,
        digest: int,
    ) -> None:
        self.write_log.setdefault(key, []).append(
            (epoch, offset, stop, source_rank, digest)
        )

    def report(self, replay: "Sanitizer | None" = None) -> SanitizerReport:
        """Assemble the report, diffing against ``replay`` when given."""
        diagnostics: list[Diagnostic] = []
        if replay is not None:
            diagnostics.extend(diff_write_logs(self, replay))
        return SanitizerReport(
            puts_checked=self.puts_checked,
            collectives_checked=self.collectives_checked,
            windows_tracked=self.windows_tracked,
            epochs_closed=self.epochs_closed,
            replayed=replay is not None,
            diagnostics=diagnostics,
        )


def diff_write_logs(baseline: Sanitizer, replay: Sanitizer) -> list[Diagnostic]:
    """MOD053: windows whose put payloads differ between run and replay."""
    diagnostics: list[Diagnostic] = []
    for key in sorted(set(baseline.write_log) | set(replay.write_log)):
        meta = baseline.window_meta.get(key) or replay.window_meta.get(key)
        label, op_type, nondet_feed = meta if meta else ("<unknown>", "<unknown>", False)
        if nondet_feed:
            # A declared non-deterministic feed: MOD030/031 already warn.
            continue
        first = sorted(baseline.write_log.get(key, ()))
        second = sorted(replay.write_log.get(key, ()))
        if first == second:
            continue
        job_seq, owner_rank, _nth = key
        divergent = next(
            (a for a, b in zip(first, second) if a != b),
            first[len(second)] if len(first) > len(second)
            else second[len(first)] if len(second) > len(first) else None,
        )
        detail = ""
        if divergent is not None:
            epoch, offset, stop, source_rank, _digest_ = divergent
            detail = (
                f"; first divergence at epoch {epoch}, rows [{offset}, {stop}) "
                f"from rank {source_rank}"
            )
        diagnostics.append(
            Diagnostic(
                rule=RULES["MOD053"],
                severity=RULES["MOD053"].severity,
                message=(
                    f"replaying the plan shipped different bytes through the "
                    f"window created by {label} (job {job_seq}, owner rank "
                    f"{owner_rank}): {len(first)} vs {len(second)} recorded "
                    f"puts{detail}; an operator feeding this exchange is "
                    f"non-deterministic despite declaring deterministic=True"
                ),
                path=f"runtime/{label}",
                operator=op_type,
            )
        )
    return diagnostics


class SanitizerJob:
    """Cross-rank sanitizer state of one MPI job (one ``cluster.run``).

    Installed as ``comm.sanitizer`` on every rank of the job; rank threads
    call in concurrently, so all mutable state sits behind one lock.
    """

    def __init__(self, parent: Sanitizer, seq: int, n_ranks: int) -> None:
        self.parent = parent
        self.seq = seq
        self.n_ranks = n_ranks
        self._lock = threading.Lock()
        #: Per-rank collective schedule: list of (tag, operator label).
        self._schedule: list[list[tuple[str, str]]] = [[] for _ in range(n_ranks)]
        self._finished: set[int] = set()
        #: id(window) -> _WindowState for windows this job registered.
        self._windows: dict[int, _WindowState] = {}
        #: Per owner rank, how many windows it registered (deterministic
        #: window keys across replays).
        self._win_counter = [0] * n_ranks

    def _raise(self, rule_id: str, op: "Operator | None", message: str) -> None:
        if op is not None and rule_id in op.lint_suppressions:
            return
        raise SanitizerError(_diagnostic(rule_id, op, message))

    # -- window registration & lifetime (MOD050/052/053) ---------------------

    def on_win_create(self, window: "Window", rank: int) -> None:
        op = self.parent.current_op()
        with self._lock:
            nth = self._win_counter[rank]
            self._win_counter[rank] = nth + 1
            key = (self.seq, rank, nth)
            state = _WindowState(
                key=key,
                owner_rank=rank,
                capacity=window.capacity,
                creator=op,
                nondet_feed=_feeds_nondeterminism(op),
            )
            self._windows[id(window)] = state
            self.parent.windows_tracked += 1
            self.parent.window_meta.setdefault(
                key,
                (
                    _provenance(op),
                    type(op).__name__ if op is not None else "<substrate>",
                    state.nondet_feed,
                ),
            )
        window.sanitizer = self

    def on_put(
        self, window: "Window", offset: int, data: "RowVector", source_rank: int
    ) -> None:
        state = self._windows.get(id(window))
        if state is None:
            return
        op = self.parent.current_op()
        stop = offset + len(data)
        with self._lock:
            self.parent.puts_checked += 1
            if state.closed:
                self._raise(
                    "MOD052", op,
                    f"{_provenance(op)} issued a one-sided put of rows "
                    f"[{offset}, {stop}) into the window on rank "
                    f"{state.owner_rank} after its job closed the window "
                    f"(use-after-close)",
                )
            if data.element_type != window.element_type:
                self._raise(
                    "MOD050", op,
                    f"{_provenance(op)} on rank {source_rank} put "
                    f"{data.element_type!r} tuples into the window on rank "
                    f"{state.owner_rank} registered for "
                    f"{window.element_type!r} (epoch {state.epoch})",
                )
            if offset < 0 or stop > state.capacity:
                self._raise(
                    "MOD050", op,
                    f"{_provenance(op)} on rank {source_rank} put rows "
                    f"[{offset}, {stop}) outside the window of capacity "
                    f"{state.capacity} on rank {state.owner_rank} "
                    f"(epoch {state.epoch}); the histogram ladder promised "
                    f"a region it does not have",
                )
            for start0, stop0, src0, label0 in state.epoch_writes:
                if src0 != source_rank and offset < stop0 and start0 < stop:
                    self._raise(
                        "MOD050", op,
                        f"RMA write-set race in epoch {state.epoch}: "
                        f"{label0} on rank {src0} and {_provenance(op)} on "
                        f"rank {source_rank} both wrote rows "
                        f"[{max(offset, start0)}, {min(stop, stop0)}) of the "
                        f"window on rank {state.owner_rank}; the exclusive "
                        f"write regions the exchange derived from its "
                        f"histograms overlap",
                    )
            state.epoch_writes.append((offset, stop, source_rank, _provenance(op)))
            state.unfenced_puts += 1
            self.parent._record_put(
                state.key, state.epoch, offset, stop, source_rank, _digest(data)
            )

    def on_read(self, window: "Window", start: int, stop: int) -> None:
        state = self._windows.get(id(window))
        if state is None:
            return
        op = self.parent.current_op()
        with self._lock:
            if state.closed:
                self._raise(
                    "MOD052", op,
                    f"{_provenance(op)} read rows [{start}, {stop}) of the "
                    f"window on rank {state.owner_rank} after its job closed "
                    f"the window (use-after-close)",
                )
            for start0, stop0, src0, label0 in state.epoch_writes:
                if (
                    src0 != state.owner_rank
                    and start < stop0
                    and start0 < stop
                ):
                    self._raise(
                        "MOD052", op,
                        f"{_provenance(op)} read rows [{start}, {stop}) of "
                        f"the window on rank {state.owner_rank} before the "
                        f"epoch's closing fence, but {label0} on rank {src0} "
                        f"wrote rows [{start0}, {stop0}) one-sidedly in this "
                        f"epoch; the read is not guaranteed to observe the "
                        f"transfer",
                    )

    def on_fence(self, window: "Window") -> None:
        state = self._windows.get(id(window))
        if state is None:
            return
        with self._lock:
            state.epoch += 1
            state.epoch_writes = []
            state.unfenced_puts = 0
            self.parent.epochs_closed += 1

    # -- collective schedule (MOD051) ----------------------------------------

    def on_collective(self, rank: int, index: int, tag: str) -> None:
        op = self.parent.current_op()
        label = _provenance(op)
        with self._lock:
            self.parent.collectives_checked += 1
            self._schedule[rank].append((tag, label))
            for other in range(self.n_ranks):
                if other == rank:
                    continue
                other_schedule = self._schedule[other]
                if len(other_schedule) > index:
                    other_tag, other_label = other_schedule[index]
                    if other_tag != tag:
                        self._raise(
                            "MOD051", op,
                            f"collective schedules diverge at call {index}: "
                            f"rank {rank} issued {tag!r} from {label} but "
                            f"rank {other} issued {other_tag!r} from "
                            f"{other_label}; on real MPI this deadlocks",
                        )
                elif other in self._finished:
                    self._raise(
                        "MOD051", op,
                        f"rank {other} finished after {len(other_schedule)} "
                        f"collective calls, but rank {rank} issued call "
                        f"{index} ({tag!r} from {label}); rank {other} will "
                        f"never match it and the job would deadlock",
                    )

    def on_rank_finished(self, rank: int) -> None:
        """Called when a rank's SPMD function returns normally."""
        with self._lock:
            self._finished.add(rank)
            n_calls = len(self._schedule[rank])
            for other in range(self.n_ranks):
                if other == rank or other in self._finished:
                    continue
                other_schedule = self._schedule[other]
                if len(other_schedule) > n_calls:
                    tag, label = other_schedule[n_calls]
                    self._raise(
                        "MOD051", None,
                        f"rank {rank} finished after {n_calls} collective "
                        f"calls but rank {other} already issued call "
                        f"{n_calls} ({tag!r} from {label}); the collective "
                        f"schedules diverge and the job would deadlock "
                        f"waiting for rank {rank}",
                    )
            if len(self._finished) == self.n_ranks:
                self._finish_job_locked()

    def _finish_job_locked(self) -> None:
        for state in self._windows.values():
            if state.unfenced_puts:
                self._raise(
                    "MOD052", state.creator,
                    f"{state.unfenced_puts} one-sided put(s) into the window "
                    f"on rank {state.owner_rank} (created by "
                    f"{_provenance(state.creator)}) were never completed by "
                    f"a closing fence before the job ended; peers are not "
                    f"guaranteed to observe the data (put-after-fence)",
                )
        for state in self._windows.values():
            state.closed = True
