"""Recovery-soundness lint pass (rules MOD030–MOD032).

Pipeline-level fault recovery (:mod:`repro.faults`) re-executes a failed
MPI stage and serves completed materialization points from checkpoints.
That is only sound when re-running a pipeline reproduces the lost
attempt's data bit-for-bit — the property
:attr:`repro.core.operator.Operator.deterministic` declares.  This pass
flags the plan shapes that break it:

* **MOD030** — a non-deterministic operator feeds an ``MpiExchange`` /
  ``MpiBroadcast`` with no materialization point on the path.  A retried
  stage would exchange *different* tuples than the aborted attempt, so
  survivors of a partial epoch could observe a mixture of two
  generations of data; a materialization point between (which recovery
  checkpoints) pins the stream.
* **MOD031** — any other non-deterministic operator inside an
  ``MpiExecutor`` worker scope: the stage re-execution completes but does
  not reproduce the original results, silently breaking the
  bit-identical-under-chaos guarantee.
* **MOD032** — an ``MpiExecutor`` nested plan whose root is not a
  materializing operator: the stage *output* never reaches a
  materialization point, so recovery has nothing to checkpoint and every
  retry recomputes the full stage.

Everything here is advisory (warnings/info): fault injection is opt-in,
and plans that never run under a fault policy lose nothing.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Reporter, unwrap
from repro.analysis.structure import ScopeInfo, scope_paths
from repro.core.operator import Operator
from repro.core.operators.chunk_ops import MaterializeChunks
from repro.core.operators.materialize import MaterializeRowVector
from repro.core.operators.mpi_broadcast import MpiBroadcast
from repro.core.operators.mpi_exchange import MpiExchange
from repro.core.operators.mpi_executor import MpiExecutor
from repro.core.plan import SharedScan, walk

__all__ = ["run"]

#: Operators that pin their upstream stream at a materialization point —
#: exactly the nodes pipeline-level recovery checkpoints.
_MATERIALIZERS = (MaterializeRowVector, MaterializeChunks)


def _unprotected_nondeterministic(op: Operator) -> list[Operator]:
    """Non-deterministic ops reachable upstream without crossing a
    materialization point."""
    found: list[Operator] = []
    seen: set[int] = set()
    pending = [unwrap(up) for up in op.upstreams]
    while pending:
        node = pending.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if not node.deterministic:
            found.append(node)
        if isinstance(node, _MATERIALIZERS):
            continue
        pending.extend(unwrap(up) for up in node.upstreams)
    return found


def run(scope: ScopeInfo, reporter: Reporter) -> None:
    paths = scope_paths(scope)

    # MOD032 — the stage output of an MpiExecutor worker plan is not a
    # materialization point (checked at the scope that *is* that plan).
    if isinstance(scope.owner, MpiExecutor):
        root = unwrap(scope.root)
        if not isinstance(root, _MATERIALIZERS):
            reporter.emit(
                "MOD032", scope.root, paths[id(scope.root)],
                f"this MpiExecutor stage ends in {type(root).__name__}, not "
                "a materializing operator; pipeline-level recovery cannot "
                "checkpoint the stage output and every retry recomputes the "
                "full stage",
            )

    # MOD030 — non-deterministic streams entering an exchange unprotected.
    flagged: set[int] = set()
    for op in walk(scope.root):
        target = unwrap(op)
        if not isinstance(target, (MpiExchange, MpiBroadcast)):
            continue
        for source in _unprotected_nondeterministic(target):
            flagged.add(id(source))
            reporter.emit(
                "MOD030", source, paths[id(source)],
                f"non-deterministic {type(source).__name__} reaches the "
                f"{type(target).__name__} at {paths[id(target)]} with no "
                "materialization point between; a recovery re-execution "
                "would exchange different data — materialize the stream "
                "before the network boundary",
            )

    # MOD031 — remaining non-determinism inside an MPI worker scope.
    if not scope.in_cluster:
        return
    for op in walk(scope.root):
        if isinstance(op, SharedScan):
            continue
        if op.deterministic or id(op) in flagged:
            continue
        reporter.emit(
            "MOD031", op, paths[id(op)],
            f"{type(op).__name__} declares deterministic=False inside an "
            "MpiExecutor worker scope; a pipeline-stage re-execution after "
            "an injected fault cannot reproduce the lost attempt's results",
        )
