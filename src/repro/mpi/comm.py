"""Simulated MPI communicator with one-sided RMA operations.

Each rank runs on its own thread and owns a :class:`SimComm` handle.  The
handles share a :class:`CommWorld`, which implements collectives as
rendezvous points: every rank deposits its contribution and its *simulated*
arrival time; when the last rank arrives the result is computed and every
participant's clock jumps to ``max(arrival times) + collective cost``.  The
stall each rank experiences is exactly the paper's tail-latency effect —
a rank that was slow in a preceding phase delays everybody at the next
``MPI_Allreduce`` or ``MPI_Win_create``.

MPI semantics enforced (violations raise
:class:`~repro.errors.SimulationError` on every rank rather than
deadlocking):

* all ranks must issue the same sequence of collective calls,
* one-sided puts target registered windows and must stay in bounds,
* puts from different ranks within one epoch must not overlap.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import RankCrashError, RetryBudgetExceeded, SimulationError
from repro.mpi.clock import SimClock
from repro.mpi.costmodel import CostModel
from repro.mpi.trace import ClusterTrace, TraceEvent
from repro.observability.events import (
    CollectiveDetail,
    FaultDetail,
    PutDetail,
    RetryDetail,
    WindowDetail,
)
from repro.mpi.window import Window
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

if TYPE_CHECKING:
    from repro.analysis.sanitizer import SanitizerJob
    from repro.faults.injector import RankFaults
    from repro.observability.metrics import MetricsRegistry

__all__ = ["CommWorld", "SimComm", "WindowSet"]

_WAIT_SLICE = 0.05  # real seconds between abort checks while waiting


class _Slot:
    """Rendezvous state for one collective call index."""

    __slots__ = ("tag", "values", "arrivals", "result", "result_time", "done", "retrieved")

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.values: dict[int, object] = {}
        self.arrivals: dict[int, float] = {}
        self.result: object = None
        self.result_time = 0.0
        self.done = False
        self.retrieved = 0


class CommWorld:
    """Shared state of one simulated MPI job (one communicator)."""

    def __init__(
        self,
        n_ranks: int,
        cost_model: CostModel,
        trace: ClusterTrace | None = None,
        wait_slice: float = _WAIT_SLICE,
    ) -> None:
        if n_ranks < 1:
            raise SimulationError(f"need at least one rank, got {n_ranks}")
        if wait_slice <= 0:
            raise SimulationError(f"wait_slice must be > 0, got {wait_slice}")
        self.n_ranks = n_ranks
        self.cost = cost_model
        self.trace = trace
        self.wait_slice = wait_slice
        self._cond = threading.Condition()
        self._slots: dict[int, _Slot] = {}
        self._abort: BaseException | None = None

    # -- failure propagation -------------------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Mark the job failed; wakes every rank blocked in a collective."""
        with self._cond:
            if self._abort is None:
                self._abort = exc
            self._cond.notify_all()

    def _check_abort(self) -> None:
        if self._abort is not None:
            raise SimulationError("peer rank failed; aborting collective") from self._abort

    # -- the generic rendezvous -----------------------------------------------

    def rendezvous(
        self,
        call_index: int,
        tag: str,
        rank: int,
        value: object,
        arrival_time: float,
        combine: Callable[[dict[int, object]], object],
        op_cost: float,
    ) -> tuple[object, float]:
        """Deposit ``value`` for collective ``call_index`` and await the result.

        Returns ``(result, result_time)`` where ``result_time`` is the
        simulated completion instant shared by all participants.
        """
        with self._cond:
            self._check_abort()
            slot = self._slots.get(call_index)
            if slot is None:
                slot = _Slot(tag)
                self._slots[call_index] = slot
            if slot.tag != tag:
                exc = SimulationError(
                    f"collective mismatch at call {call_index}: rank {rank} issued "
                    f"{tag!r} but another rank issued {slot.tag!r}"
                )
                self.abort(exc)
                raise exc
            if rank in slot.values:
                exc = SimulationError(
                    f"rank {rank} issued collective call {call_index} twice"
                )
                self.abort(exc)
                raise exc
            slot.values[rank] = value
            slot.arrivals[rank] = arrival_time
            if len(slot.values) == self.n_ranks:
                try:
                    slot.result = combine(slot.values)
                except BaseException as exc:
                    self.abort(exc)
                    raise
                slot.result_time = max(slot.arrivals.values()) + op_cost
                slot.done = True
                self._cond.notify_all()
            else:
                while not slot.done:
                    self._check_abort()
                    self._cond.wait(timeout=self.wait_slice)
            result, result_time = slot.result, slot.result_time
            slot.retrieved += 1
            if slot.retrieved == self.n_ranks:
                del self._slots[call_index]
            return result, result_time


class WindowSet:
    """The windows created by one collective ``win_create`` call.

    Gives a rank one-sided access to every peer's window while charging the
    sender's clock for the transfer, exactly like an RDMA put: the receiving
    CPU is not involved.
    """

    __slots__ = ("_windows", "_comm")

    def __init__(self, windows: Sequence[Window], comm: "SimComm") -> None:
        self._windows = tuple(windows)
        self._comm = comm

    @property
    def local(self) -> Window:
        """The window registered by the calling rank."""
        return self._windows[self._comm.rank]

    def window_of(self, rank: int) -> Window:
        return self._windows[rank]

    def put(self, target_rank: int, offset: int, data: RowVector) -> None:
        """One-sided write of ``data`` rows at ``offset`` on ``target_rank``.

        The sender's clock is charged ``transfer_cost × (1 − overlap)``;
        the overlap discount models asynchronous RDMA writes hidden behind
        the partitioning loop (paper Section 4.1.1).

        Under fault injection a network put may be dropped in transit: the
        failed attempt charges the full transfer cost plus an exponential
        backoff wait before re-sending, and an exhausted retry budget
        raises :class:`~repro.errors.RetryBudgetExceeded`.  Self-puts are
        local memcpys and never fail.
        """
        comm = self._comm
        payload = data.size_bytes()
        cost = comm.cost.transfer_cost(payload)
        if target_rank == comm.rank:
            cost = comm.cost.copy_cost(payload)
        else:
            cost *= 1.0 - comm.cost.network_overlap
            faults = comm.faults
            if faults is not None:
                comm._check_crash()
                attempt = 1
                while faults.put_drops():
                    comm._transient_fault(
                        op=f"put->{target_rank}",
                        fault="put_drop",
                        attempt=attempt,
                        lost_cost=cost,
                        backoff=faults.backoff(attempt),
                        target=target_rank,
                    )
                    if attempt >= faults.max_attempts:
                        raise RetryBudgetExceeded(
                            f"put to rank {target_rank} from rank {comm.rank} "
                            f"dropped {attempt} times; retry budget exhausted",
                            sim_time=comm.clock.now,
                        )
                    attempt += 1
        sanitizer = comm.sanitizer
        if sanitizer is not None:
            sanitizer.on_put(self._windows[target_rank], offset, data, comm.rank)
        self._windows[target_rank].write(offset, data, source_rank=comm.rank)
        start = comm.clock.now
        comm.clock.advance(cost)
        metrics = comm.metrics
        if metrics is not None:
            scope = "local" if target_rank == comm.rank else "network"
            metrics.counter("comm_puts", scope=scope).inc()
            metrics.counter("comm_put_bytes", scope=scope).add(payload)
            metrics.counter("comm_put_rows", scope=scope).add(len(data))
            metrics.histogram("comm_put_seconds").observe(cost)
        trace = comm.world.trace
        if trace is not None:
            trace.record(
                TraceEvent(
                    rank=comm.rank,
                    kind="put",
                    label=f"put->{target_rank}",
                    start=start,
                    end=comm.clock.now,
                    detail=PutDetail(target=target_rank, rows=len(data), bytes=payload),
                )
            )

    def get(self, target_rank: int, start: int, stop: int) -> RowVector:
        """One-sided read of rows ``[start, stop)`` from ``target_rank``."""
        data = self._windows[target_rank].read(start, stop)
        if target_rank != self._comm.rank:
            self._comm.clock.advance(self._comm.cost.transfer_cost(data.size_bytes()))
        return data

    def flush(self) -> None:
        """Complete this rank's outstanding puts (``MPI_Win_flush``).

        Passive-target synchronization: unlike ``fence`` this is *not*
        collective — only the calling rank's transfers are forced out, and
        its buffers may be reused afterwards.  The simulation performs puts
        eagerly, so flushing charges only the residual network time the
        overlap discount deferred.
        """
        self._comm.clock.advance(self._comm.cost.net_latency)

    def fence(self) -> None:
        """Collective epoch boundary: all outstanding puts complete here."""
        self._comm.fence(self)

    def _end_epochs(self) -> None:
        sanitizer = self._comm.sanitizer
        for window in self._windows:
            if sanitizer is not None:
                sanitizer.on_fence(window)
            window.end_epoch()


class SimComm:
    """Per-rank communicator handle (the simulation's ``MPI_COMM_WORLD``)."""

    def __init__(self, world: CommWorld, rank: int, clock: SimClock) -> None:
        self.world = world
        self.rank = rank
        self.clock = clock
        #: Per-rank fault-decision handle, or None when no faults can fire
        #: (the hot comm paths then pay a single ``is None`` check).
        self.faults: "RankFaults | None" = None
        #: Per-rank metrics registry, or None when the execution does not
        #: record metrics (same single ``is None`` check discipline).
        self.metrics: "MetricsRegistry | None" = None
        #: Runtime-sanitizer job (MOD05x) shared by every rank of this MPI
        #: job, or None on unsanitized runs (same ``is None`` discipline).
        self.sanitizer: "SanitizerJob | None" = None
        self._call_index = 0

    @property
    def n_ranks(self) -> int:
        return self.world.n_ranks

    @property
    def cost(self) -> CostModel:
        return self.world.cost

    # -- fault injection hooks -------------------------------------------------

    def _check_crash(self) -> None:
        """Fire an injected rank crash if its trigger is met, tracing it."""
        try:
            self.faults.check_crash(self.clock.now)
        except RankCrashError:
            if self.world.trace is not None:
                self.world.trace.record(
                    TraceEvent(
                        rank=self.rank,
                        kind="fault",
                        label="crash",
                        start=self.clock.now,
                        end=self.clock.now,
                        detail=FaultDetail(fault="crash", target=self.rank),
                    )
                )
            raise

    def _transient_fault(
        self,
        op: str,
        fault: str,
        attempt: int,
        lost_cost: float,
        backoff: float,
        target: int = -1,
    ) -> None:
        """Charge one dropped comm attempt + its backoff wait; trace both."""
        fault_start = self.clock.now
        self.clock.advance(lost_cost)
        retry_start = self.clock.now
        self.clock.advance(backoff)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("fault_retries", fault=fault).inc()
        trace = self.world.trace
        if trace is not None:
            trace.record(
                TraceEvent(
                    rank=self.rank,
                    kind="fault",
                    label=fault,
                    start=fault_start,
                    end=retry_start,
                    detail=FaultDetail(fault=fault, attempt=attempt, target=target),
                )
            )
            trace.record(
                TraceEvent(
                    rank=self.rank,
                    kind="retry",
                    label=op,
                    start=retry_start,
                    end=self.clock.now,
                    detail=RetryDetail(op=op, attempt=attempt, backoff=backoff),
                )
            )

    def _collect(
        self,
        tag: str,
        value: object,
        combine: Callable[[dict[int, object]], object],
        op_cost: float,
    ) -> object:
        faults = self.faults
        if faults is not None:
            self._check_crash()
            # Retry a lost *contribution* before the single rendezvous call,
            # keeping the collective call-index protocol identical across
            # ranks; the delayed arrival time stalls peers naturally.
            attempt = 1
            while faults.collective_drops():
                self._transient_fault(
                    op=tag,
                    fault="collective_drop",
                    attempt=attempt,
                    lost_cost=self.cost.net_latency,
                    backoff=faults.backoff(attempt),
                )
                if attempt >= faults.max_attempts:
                    raise RetryBudgetExceeded(
                        f"contribution of rank {self.rank} to collective "
                        f"{tag!r} dropped {attempt} times; retry budget "
                        "exhausted",
                        sim_time=self.clock.now,
                    )
                attempt += 1
        index = self._call_index
        self._call_index += 1
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_collective(self.rank, index, tag)
        arrival = self.clock.now
        result, result_time = self.world.rendezvous(
            index, tag, self.rank, value, arrival, combine, op_cost
        )
        self.clock.advance_to(result_time)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("comm_collectives", tag=tag).inc()
        if self.world.trace is not None:
            self.world.trace.record(
                TraceEvent(
                    rank=self.rank,
                    kind="collective",
                    label=tag,
                    start=arrival,
                    end=result_time,
                    detail=CollectiveDetail(
                        stall=max(0.0, result_time - op_cost - arrival)
                    ),
                )
            )
        return result

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks (no data)."""
        self._collect(
            "barrier", None, lambda values: None, self.cost.collective_cost(self.n_ranks)
        )

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Element-wise reduction of ``array`` across ranks (``MPI_Allreduce``).

        This is what ``MpiHistogram`` uses to turn local histograms into the
        global one (paper Section 3.3.3).
        """
        array = np.asarray(array)

        def combine(values: dict[int, object]) -> np.ndarray:
            stack = np.stack([values[r] for r in range(self.n_ranks)])
            if op == "sum":
                return stack.sum(axis=0)
            if op == "max":
                return stack.max(axis=0)
            if op == "min":
                return stack.min(axis=0)
            raise SimulationError(f"unsupported allreduce op {op!r}")

        cost = self.cost.collective_cost(self.n_ranks, array.nbytes)
        return self._collect(f"allreduce:{op}", array, combine, cost)

    def allgather(self, value: object, payload_bytes: int = 64) -> list:
        """Gather one value from every rank, delivered to all ranks."""

        def combine(values: dict[int, object]) -> list:
            return [values[r] for r in range(self.n_ranks)]

        cost = self.cost.collective_cost(self.n_ranks, payload_bytes * self.n_ranks)
        return self._collect("allgather", value, combine, cost)

    def win_create(self, element_type: TupleType, capacity: int) -> WindowSet:
        """Collectively register one RMA window per rank (``MPI_Win_create``).

        Each rank pays the registration (pinning) cost of its own window
        *before* the collective synchronization, so a rank registering a
        large window stalls everyone — the window-allocation tail latency
        the paper observes in the network-partitioning phase.
        """
        window = Window(self.rank, element_type, capacity)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_win_create(window, self.rank)
        start = self.clock.now
        self.clock.advance(self.cost.window_registration_cost(window.size_bytes()))
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("comm_windows").inc()
            metrics.gauge("comm_window_bytes_hwm").set_max(window.size_bytes())
        if self.world.trace is not None:
            self.world.trace.record(
                TraceEvent(
                    rank=self.rank,
                    kind="win_create",
                    label=repr(element_type),
                    start=start,
                    end=self.clock.now,
                    detail=WindowDetail(bytes=window.size_bytes(), rows=capacity),
                )
            )

        def combine(values: dict[int, object]) -> tuple[Window, ...]:
            return tuple(values[r] for r in range(self.n_ranks))

        windows = self._collect(
            "win_create", window, combine, self.cost.collective_cost(self.n_ranks)
        )
        return WindowSet(windows, self)

    def fence(self, window_set: WindowSet) -> None:
        """Collective RMA epoch boundary (``MPI_Win_fence``)."""

        def combine(values: dict[int, object]) -> None:
            window_set._end_epochs()
            return None

        self._collect("fence", None, combine, self.cost.collective_cost(self.n_ranks))
