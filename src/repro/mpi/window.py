"""RMA windows: registered memory regions for one-sided transfers.

A :class:`Window` models the memory region a rank reserves, pins, and
registers with the NIC (paper Section 2.1).  Remote ranks write into it with
one-sided puts at offsets they computed *locally* from the global histogram;
no synchronization happens during the transfer.  The simulation preserves —
and asserts — the property that makes this safe on real RDMA hardware:
within one RMA epoch (between two fences), the regions written by different
ranks must be disjoint.  Overlap would be a silent data race on InfiniBand;
here it raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.types.atoms import AtomType
from repro.types.collections import RowVector
from repro.types.tuples import TupleType

__all__ = ["Window"]


def _column_dtype(item_type: object) -> str:
    if isinstance(item_type, AtomType):
        return item_type.numpy_dtype
    return "object"


class Window:
    """A typed, fixed-capacity RMA window owned by one rank.

    Rows are addressed by row offset rather than byte offset; the byte view
    used by the cost model is ``rows × element_type.row_size_bytes()``.
    """

    __slots__ = (
        "owner_rank",
        "element_type",
        "capacity",
        "sanitizer",
        "_columns",
        "_epoch_writes",
    )

    def __init__(self, owner_rank: int, element_type: TupleType, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError(f"window capacity must be >= 0, got {capacity}")
        self.owner_rank = owner_rank
        self.element_type = element_type
        self.capacity = capacity
        #: Sanitizer job watching this window's lifetime (MOD05x), or None.
        self.sanitizer = None
        self._columns = [
            np.zeros(capacity, dtype=_column_dtype(f.item_type)) for f in element_type
        ]
        #: (start, stop, source_rank) intervals written in the current epoch.
        self._epoch_writes: list[tuple[int, int, int]] = []

    def size_bytes(self) -> int:
        """Registered size in bytes, charged at registration time."""
        return self.capacity * self.element_type.row_size_bytes()

    # -- one-sided access --------------------------------------------------

    def write(self, offset: int, data: RowVector, source_rank: int) -> None:
        """Deposit ``data`` at row ``offset`` on behalf of ``source_rank``.

        Raises:
            SimulationError: On out-of-bounds writes, element-type
                mismatches, or overlap with a region another rank wrote in
                the same epoch (a would-be RDMA data race).
        """
        if data.element_type != self.element_type:
            raise SimulationError(
                f"put of {data.element_type!r} into window of {self.element_type!r}"
            )
        stop = offset + len(data)
        if offset < 0 or stop > self.capacity:
            raise SimulationError(
                f"put [{offset}, {stop}) outside window of capacity {self.capacity}"
            )
        for start0, stop0, src0 in self._epoch_writes:
            if src0 != source_rank and offset < stop0 and start0 < stop:
                raise SimulationError(
                    f"RDMA race: ranks {src0} and {source_rank} both wrote rows "
                    f"[{max(offset, start0)}, {min(stop, stop0)}) of the window "
                    f"on rank {self.owner_rank} within one epoch"
                )
        self._epoch_writes.append((offset, stop, source_rank))
        for dst, src in zip(self._columns, data.columns):
            dst[offset:stop] = src

    def read(self, start: int = 0, stop: int | None = None) -> RowVector:
        """Read rows ``[start, stop)`` as a RowVector (one-sided get)."""
        stop = self.capacity if stop is None else stop
        if start < 0 or stop > self.capacity or start > stop:
            raise SimulationError(
                f"get [{start}, {stop}) outside window of capacity {self.capacity}"
            )
        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_read(self, start, stop)
        return RowVector(self.element_type, [col[start:stop] for col in self._columns])

    # -- epochs --------------------------------------------------------------

    def end_epoch(self) -> int:
        """Close the current RMA epoch (at a fence); returns rows written."""
        written = sum(stop - start for start, stop, _ in self._epoch_writes)
        self._epoch_writes.clear()
        return written
