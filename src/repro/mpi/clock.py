"""Per-rank simulated clocks and phase timing.

Each simulated rank advances its own :class:`SimClock` as operators charge
CPU, memory, and network costs.  Collectives synchronize clocks to the
latest participant (plus the collective's own cost), which is how the
paper's tail-latency effects — ranks stalling in ``MPI_Allreduce`` or
window-allocation calls because an upstream phase was slightly slower on
one rank — arise naturally in the simulation.

Every advance is attributed to the clock's *current phase*, a plain label
set by whichever operator is charging (pipelined execution interleaves
operator frames arbitrarily, so a phase stack would not stay well-nested;
a set-before-charge label does).  The per-phase sums become the phase
breakdowns of Figure 6a.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["SimClock", "PhaseTimings", "DEFAULT_PHASE"]

#: Phase charged when no operator claimed one.
DEFAULT_PHASE = "other"


class PhaseTimings:
    """Accumulated simulated seconds per named phase on one rank."""

    __slots__ = ("_durations",)

    def __init__(self) -> None:
        self._durations: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self._durations[phase] = self._durations.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self._durations.get(phase, 0.0)

    def phases(self) -> list[str]:
        return list(self._durations)

    def as_dict(self) -> dict[str, float]:
        return dict(self._durations)

    def total(self) -> float:
        return sum(self._durations.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.6f}" for k, v in self._durations.items())
        return f"PhaseTimings({inner})"


class SimClock:
    """A monotone simulated clock for one rank."""

    __slots__ = ("_now", "phase", "timings", "jitter_factor")

    def __init__(self, jitter_factor: float = 1.0) -> None:
        self._now = 0.0
        #: Label charged by subsequent advances; set by operators.
        self.phase = DEFAULT_PHASE
        self.timings = PhaseTimings()
        #: Multiplier applied to CPU advances; drawn once per rank so that
        #: "slower" ranks consistently arrive late at collectives.
        self.jitter_factor = jitter_factor

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, jitter: bool = False) -> None:
        """Move the clock forward by ``seconds``.

        Args:
            seconds: Non-negative simulated duration.
            jitter: Apply this rank's CPU-speed jitter factor; used for
                compute-bound work, not for network/hardware-paced costs.
        """
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds} s")
        if jitter:
            seconds *= self.jitter_factor
        self._now += seconds
        self.timings.add(self.phase, seconds)

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp`` (no-op if already past it).

        Returns the stall duration, attributed to the current phase; this is
        the wait a rank experiences inside a collective.
        """
        stall = max(0.0, timestamp - self._now)
        if stall:
            self._now = timestamp
            self.timings.add(self.phase, stall)
        return stall
