"""Simulated MPI/RDMA substrate.

The paper runs on an 8-machine InfiniBand cluster driven through MPI
one-sided operations.  This package is the drop-in substitute: threads play
ranks, numpy buffers play pinned RMA windows, rendezvous points play
collectives, and a calibrated cost model drives per-rank simulated clocks.
See DESIGN.md Section 2 for the substitution argument.
"""

from repro.mpi.clock import PhaseTimings, SimClock
from repro.mpi.cluster import ClusterResult, RankContext, SimCluster
from repro.mpi.comm import CommWorld, SimComm, WindowSet
from repro.mpi.costmodel import DEFAULT_COST_MODEL, CostModel, MachineSpec, PAPER_MACHINE
from repro.mpi.trace import ClusterTrace, TraceEvent
from repro.mpi.window import Window

__all__ = [
    "PhaseTimings",
    "SimClock",
    "ClusterResult",
    "RankContext",
    "SimCluster",
    "CommWorld",
    "SimComm",
    "WindowSet",
    "CostModel",
    "MachineSpec",
    "DEFAULT_COST_MODEL",
    "PAPER_MACHINE",
    "Window",
    "ClusterTrace",
    "TraceEvent",
]
