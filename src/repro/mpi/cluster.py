"""The simulated MPI cluster: rank processes, dispatch, result harvesting.

:class:`SimCluster` plays the role of ``mpirun`` plus the physical machines:
it spawns one thread per rank, hands each a :class:`RankContext` (rank id,
communicator, simulated clock, seeded RNG), runs the same SPMD function on
all of them, and harvests per-rank results, per-rank clocks, and per-phase
timing breakdowns.

All computation happens for real; the simulated clocks never influence
results, only the reported timings, so runs are bit-deterministic for a
given seed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

import numpy as np

from repro.errors import SimulationError
from repro.mpi.clock import PhaseTimings, SimClock
from repro.mpi.comm import _WAIT_SLICE, CommWorld, SimComm
from repro.mpi.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.mpi.trace import ClusterTrace, TraceEvent
from repro.observability.events import FaultDetail

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

__all__ = ["RankContext", "ClusterResult", "SimCluster"]

T = TypeVar("T")

_JOIN_TIMEOUT = 600.0  # real seconds; a safety net against deadlocks


@dataclass
class RankContext:
    """Everything a rank's SPMD program needs."""

    rank: int
    n_ranks: int
    comm: SimComm
    clock: SimClock
    cost: CostModel
    rng: np.random.Generator

    @property
    def is_root(self) -> bool:
        return self.rank == 0


@dataclass
class ClusterResult:
    """Outcome of one SPMD run.

    Attributes:
        per_rank: The value returned by each rank's function.
        clocks: Final simulated time of each rank.
        timings: Per-rank phase breakdowns.
    """

    per_rank: list
    clocks: list[float]
    timings: list[PhaseTimings]
    #: Event trace of the run, present when the cluster traces.
    trace: ClusterTrace | None = None

    @property
    def makespan(self) -> float:
        """Simulated completion time of the job (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0

    def phase_breakdown(self) -> dict[str, float]:
        """Max-over-ranks duration of each phase, in first-seen order.

        Taking the max per phase mirrors how the paper reports per-phase
        times of a bulk-synchronous algorithm: a phase lasts as long as its
        slowest participant.
        """
        breakdown: dict[str, float] = {}
        for timing in self.timings:
            for phase in timing.phases():
                breakdown[phase] = max(breakdown.get(phase, 0.0), timing.get(phase))
        return breakdown


class SimCluster:
    """A reusable simulated cluster of ``n_ranks`` worker processes.

    With the default calibration one rank models one machine of the paper's
    testbed (all of its cores together), so ``SimCluster(8)`` corresponds to
    the full 8-machine RDMA cluster of Table 2.
    """

    def __init__(
        self,
        n_ranks: int,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        seed: int = 2021,
        trace: bool = False,
        join_timeout: float = _JOIN_TIMEOUT,
        wait_slice: float = _WAIT_SLICE,
    ) -> None:
        if n_ranks < 1:
            raise SimulationError(f"cluster needs >= 1 rank, got {n_ranks}")
        if join_timeout <= 0:
            raise SimulationError(f"join_timeout must be > 0, got {join_timeout}")
        self.n_ranks = n_ranks
        self.cost_model = cost_model
        self.seed = seed
        self.trace = trace
        #: Real-seconds deadlock safety net per rank thread; chaos soaks
        #: with heavy stragglers may need a longer deadline.
        self.join_timeout = join_timeout
        #: Real seconds between abort checks while blocked in a collective.
        self.wait_slice = wait_slice

    def with_ranks(self, n_ranks: int) -> "SimCluster":
        """A cluster of different width with identical configuration.

        Used by pipeline-level recovery to degrade onto the survivors
        after a permanent rank crash.
        """
        return SimCluster(
            n_ranks,
            cost_model=self.cost_model,
            seed=self.seed,
            trace=self.trace,
            join_timeout=self.join_timeout,
            wait_slice=self.wait_slice,
        )

    def run(
        self,
        spmd_fn: Callable[[RankContext], T],
        faults: "FaultInjector | None" = None,
        options=None,
    ) -> ClusterResult:
        """Execute ``spmd_fn`` on every rank concurrently and harvest results.

        The function runs once per rank on its own thread; ranks interact
        only through ``ctx.comm``.  If any rank raises, the whole job is
        aborted (peers blocked in collectives are woken) and the original
        exception is re-raised on the caller — with every *other* genuine
        rank failure attached as ``.secondary_errors`` (and as exception
        notes), and the partial event trace as ``.cluster_trace`` when the
        cluster traces.

        ``faults`` arms deterministic fault injection for this job: each
        call draws a fresh per-job fault state from the injector, so
        re-running a failed stage retries under fresh (but reproducible)
        transient faults.  Alternatively pass
        ``options=RunOptions(faults=policy)`` — a fresh injector is then
        built from the policy for this job (``faults`` wins when both are
        given, since an injector carries cross-job state the caller wants
        preserved).

        Each call builds a fresh ``CommWorld`` and per-rank contexts, so
        concurrent ``run`` calls from different driver threads are fully
        isolated — the property the serving layer's shared-cluster
        scheduling relies on.
        """
        if faults is None and options is not None and options.faults is not None:
            from repro.faults.injector import FaultInjector

            faults = FaultInjector(options.faults)
        cluster_trace = ClusterTrace(self.n_ranks) if self.trace else None
        world = CommWorld(
            self.n_ranks, self.cost_model, trace=cluster_trace, wait_slice=self.wait_slice
        )
        jitter_rng = np.random.default_rng(self.seed)
        jitters = 1.0 + jitter_rng.uniform(
            0.0, self.cost_model.jitter_fraction, size=self.n_ranks
        )
        job = faults.job(self.n_ranks) if faults is not None else None

        results: list = [None] * self.n_ranks
        errors: list[BaseException | None] = [None] * self.n_ranks
        contexts: list[RankContext] = []
        for rank in range(self.n_ranks):
            jitter = float(jitters[rank])
            if job is not None:
                slowdown = job.slowdown(rank)
                if slowdown != 1.0:
                    jitter *= slowdown
                    if cluster_trace is not None:
                        cluster_trace.record(
                            TraceEvent(
                                rank=rank,
                                kind="fault",
                                label="straggler",
                                start=0.0,
                                end=0.0,
                                detail=FaultDetail(fault="straggler", target=rank),
                            )
                        )
            clock = SimClock(jitter_factor=jitter)
            comm = SimComm(world, rank, clock)
            if job is not None:
                comm.faults = job.rank_faults(rank)
            rng = np.random.default_rng((self.seed, rank))
            contexts.append(
                RankContext(rank, self.n_ranks, comm, clock, self.cost_model, rng)
            )

        def worker(rank: int) -> None:
            try:
                results[rank] = spmd_fn(contexts[rank])
                sanitizer = contexts[rank].comm.sanitizer
                if sanitizer is not None:
                    # MOD051: a rank finishing while a peer already issued a
                    # collective it will never match is a would-be deadlock.
                    sanitizer.on_rank_finished(rank)
            except BaseException as exc:  # noqa: BLE001 - must not hang peers
                errors[rank] = exc
                world.abort(exc)

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"sim-rank-{rank}")
            for rank in range(self.n_ranks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.join_timeout)
            if thread.is_alive():
                world.abort(SimulationError("rank did not finish within the timeout"))
                raise SimulationError(
                    f"{thread.name} did not finish within {self.join_timeout} s"
                )

        failures = [e for e in errors if e is not None]
        if failures:
            # Ranks released from a collective by an abort raise a secondary
            # "peer rank failed" error chained to the root cause; surface
            # the root cause itself when any rank still holds it.
            def is_secondary(exc: BaseException) -> bool:
                return (
                    isinstance(exc, SimulationError)
                    and exc.__cause__ is not None
                    and "peer rank failed" in str(exc)
                )

            primary = next((e for e in failures if not is_secondary(e)), failures[0])
            # Several ranks can fail for independent reasons (e.g. two
            # genuine window violations in one epoch); keep every root
            # cause on the raised error instead of dropping them.
            others = tuple(
                e for e in failures if e is not primary and not is_secondary(e)
            )
            primary.secondary_errors = others
            for other in others:
                primary.add_note(
                    f"secondary rank failure: {type(other).__name__}: {other}"
                )
            if cluster_trace is not None:
                # The partial trace of the crashed attempt, so recovery can
                # harvest the injected-fault events that led here.
                primary.cluster_trace = cluster_trace
            raise primary

        return ClusterResult(
            per_rank=results,
            clocks=[ctx.clock.now for ctx in contexts],
            timings=[ctx.clock.timings for ctx in contexts],
            trace=cluster_trace,
        )

    def partition_rows(self, n_rows: int, rank: int) -> tuple[int, int]:
        """Contiguous ``[start, stop)`` share of an input for one rank.

        The same block distribution the paper's workers use when each
        process "reads its part of the input".
        """
        base, extra = divmod(n_rows, self.n_ranks)
        start = rank * base + min(rank, extra)
        stop = start + base + (1 if rank < extra else 0)
        return start, stop
