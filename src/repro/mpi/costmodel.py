"""Calibrated cost model for the simulated RDMA cluster.

The reproduction executes every algorithm for real on real (scaled-down)
data; only *time* is modeled.  Each simulated rank owns a
:class:`~repro.mpi.clock.SimClock`, and the operators charge it through this
cost model.  The constants are calibrated to the paper's testbed (Table 2:
2× Xeon E5-2609 @ 2.4 GHz, 128 GB RAM, Mellanox QDR InfiniBand) so that the
*shape* of every figure — who wins, by what factor, where crossovers fall —
is produced by the same structural effects the paper describes:

* network volume (halved by radix compression),
* memory-bandwidth-bound partitioning and materialization,
* window registration overhead (identified as an RDMA bottleneck in [20]),
* collective synchronization stalls amplified by per-rank jitter (the
  paper's "tail latencies" in the global-histogram and window-allocation
  phases),
* interpretation/abstraction overhead of sub-operator pipelines relative to
  hand-fused monolithic loops (the paper's RowScan microbenchmark: ~1.0 s
  vs ~0.8 s for the raw C++ loop, i.e. a ~1.25× factor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "MachineSpec", "DEFAULT_COST_MODEL", "PAPER_MACHINE"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one cluster machine (paper Table 2)."""

    cores: int = 8
    cpu_ghz: float = 2.4
    ram_gb: int = 128
    l3_cache_bytes: int = 2 * 10 * 1024 * 1024
    network: str = "Mellanox QDR HCA"


#: The machines of the paper's 8-node RDMA cluster.
PAPER_MACHINE = MachineSpec()


@dataclass(frozen=True)
class CostModel:
    """Per-rank timing constants, all in (simulated) seconds or bytes/second.

    A *rank* models one worker process; with the default calibration one
    rank stands for one machine running the paper's 8 cores, so per-tuple
    CPU costs are per-machine aggregate throughputs.
    """

    machine: MachineSpec = field(default_factory=MachineSpec)

    # -- CPU work (seconds per tuple, aggregate over the machine's cores) --
    #: Sequential scan + hash of a 16-byte tuple.
    cpu_scan_tuple: float = 1.0e-9
    #: Histogram bucket count increment (hash + increment).
    cpu_histogram_tuple: float = 0.8e-9
    #: Radix partitioning with software write-combining (memory bound).
    cpu_partition_tuple: float = 1.4e-9
    #: Hash-table insert during the build phase.
    cpu_build_tuple: float = 2.2e-9
    #: Hash-table lookup during the probe phase.
    cpu_probe_tuple: float = 1.8e-9
    #: Aggregation update (ReduceByKey hash-map upsert).
    cpu_reduce_tuple: float = 2.0e-9
    #: Scalar map/filter/projection evaluation.
    cpu_map_tuple: float = 0.6e-9
    #: One comparison level of an in-cache sort (total sort cost is
    #: ``tuples × log2(tuples)`` of these).
    cpu_sort_tuple: float = 0.5e-9
    #: One step of a sorted-merge (cheaper than a hash probe: sequential).
    cpu_merge_tuple: float = 1.0e-9

    # -- memory system ----------------------------------------------------
    #: Streaming memory bandwidth per machine.
    mem_bandwidth: float = 38.0e9
    #: MaterializeRowVector grows with realloc; effective write amplification.
    realloc_amplification: float = 1.6

    # -- network (QDR InfiniBand, one-sided RDMA) --------------------------
    #: Sustained one-sided RDMA bandwidth per rank.
    net_bandwidth: float = 3.2e9
    #: Per-message latency (put/get issue overhead).
    net_latency: float = 2.0e-6
    #: Fixed cost of registering (pinning) an RMA window with the NIC.
    window_registration_base: float = 250.0e-6
    #: Per-byte cost of pinning window memory.
    window_registration_per_byte: float = 0.15e-9
    #: Software overhead per participant of one collective step.
    collective_step: float = 6.0e-6

    # -- execution-layer structure ----------------------------------------
    #: Abstraction overhead of sub-operator pipelines in fused (JIT) mode,
    #: relative to a hand-written monolithic loop (paper §5.1.2: ~1.25x).
    fused_overhead: float = 1.25
    #: Overhead of operators isolated in *small* pipelines, where the
    #: compiler inlines everything; the paper observes these end up slightly
    #: faster than the original hand-written code (§5.1, histogram phase).
    small_pipeline_overhead: float = 0.92
    #: Largest pipeline (operator count) that still gets full inlining.
    small_pipeline_max_ops: int = 4
    #: Overhead of the row-at-a-time interpreted mode (no JIT), for the
    #: interpreted-vs-fused ablation.
    interpreted_overhead: float = 8.0
    #: Fraction of network time hidden by overlapping partitioning with
    #: asynchronous RDMA writes (software write-combining + async puts).
    network_overlap: float = 0.35
    #: Per-rank relative CPU-speed jitter; the source of collective stalls.
    jitter_fraction: float = 0.06

    # -- smart-NIC offload (extension; paper §1 future work) ----------------
    #: Per-tuple cost of an aggregation update on the NIC's cores (slower
    #: than the host CPU's hash-aggregation rate).
    nic_agg_tuple: float = 5.0e-9
    #: Fraction of NIC compute hidden behind the host's partitioning work
    #: (the NIC processes buffers while the CPU prepares the next ones).
    nic_overlap: float = 0.75

    # -- derived helpers ---------------------------------------------------

    def cpu_cost(self, kind: str, tuples: int, overhead: float = 1.0) -> float:
        """Seconds of CPU work for ``tuples`` records of operator ``kind``.

        Args:
            kind: One of ``scan``, ``histogram``, ``partition``, ``build``,
                ``probe``, ``reduce``, ``map``.
            tuples: Number of records processed.
            overhead: Execution-layer multiplier (``fused_overhead`` for
                Modularis pipelines, 1.0 for the monolithic baseline).
        """
        per_tuple = getattr(self, f"cpu_{kind}_tuple")
        return per_tuple * tuples * overhead

    def materialize_cost(self, payload_bytes: int) -> float:
        """Seconds to materialize ``payload_bytes`` with realloc growth."""
        return payload_bytes * self.realloc_amplification / self.mem_bandwidth

    def copy_cost(self, payload_bytes: int) -> float:
        """Seconds to stream-copy ``payload_bytes`` through memory."""
        return payload_bytes / self.mem_bandwidth

    def transfer_cost(self, payload_bytes: int, messages: int = 1) -> float:
        """Seconds the NIC needs to push ``payload_bytes`` to remote memory."""
        return messages * self.net_latency + payload_bytes / self.net_bandwidth

    def window_registration_cost(self, window_bytes: int) -> float:
        """Seconds to reserve, pin, and register an RMA window."""
        return (
            self.window_registration_base
            + window_bytes * self.window_registration_per_byte
        )

    def collective_cost(self, n_ranks: int, payload_bytes: int = 0) -> float:
        """Seconds for one collective (barrier/allreduce) among ``n_ranks``.

        Modeled as a binomial-tree dissemination: ``ceil(log2(n))`` steps of
        fixed software overhead plus the payload crossing the network once
        per step.
        """
        if n_ranks <= 1:
            return self.collective_step
        steps = math.ceil(math.log2(n_ranks))
        return steps * (self.collective_step + payload_bytes / self.net_bandwidth)

    def with_overrides(self, **kwargs: object) -> "CostModel":
        """A copy of this model with some constants replaced (ablations)."""
        return replace(self, **kwargs)


#: The calibration used by every benchmark unless overridden.
DEFAULT_COST_MODEL = CostModel()
