"""Event tracing for the simulated cluster.

With ``SimCluster(..., trace=True)`` the substrate records every collective
(with each rank's arrival time and the synchronized completion time — i.e.
the stall each rank suffered), every one-sided put (source, target, rows,
bytes), and every window registration.  The resulting
:class:`ClusterTrace` answers the questions one debugs distributed plans
with: who stalls where, who sends how much to whom, how many collective
epochs a plan really has.

Tracing is off by default; it costs a little memory per event and nothing
else (simulated time is unaffected).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "ClusterTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded substrate event on one rank.

    Attributes:
        rank: The rank the event happened on (for puts: the sender).
        kind: ``collective`` | ``put`` | ``win_create``.
        label: Collective tag, or ``put->k`` / window element type.
        start: Simulated time the rank entered the event.
        end: Simulated time the event completed for this rank.
        detail: Kind-specific numbers (stall, bytes, rows, target, ...).
    """

    rank: int
    kind: str
    label: str
    start: float
    end: float
    detail: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class ClusterTrace:
    """Thread-safe event store for one SPMD run."""

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self._events: list[list[TraceEvent]] = [[] for _ in range(n_ranks)]
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events[event.rank].append(event)

    # -- queries -----------------------------------------------------------

    def events(self, rank: int | None = None, kind: str | None = None) -> list[TraceEvent]:
        """Events of one rank (or all), optionally filtered by kind."""
        ranks = range(self.n_ranks) if rank is None else (rank,)
        out: list[TraceEvent] = []
        for r in ranks:
            out.extend(
                e for e in self._events[r] if kind is None or e.kind == kind
            )
        return out

    def collective_count(self) -> int:
        """Number of collective epochs (same on every rank by construction)."""
        per_rank = [
            len([e for e in self._events[r] if e.kind == "collective"])
            for r in range(self.n_ranks)
        ]
        return max(per_rank) if per_rank else 0

    def stall_seconds(self, rank: int) -> float:
        """Total time ``rank`` waited inside collectives for its peers."""
        return sum(
            e.detail.get("stall", 0.0)
            for e in self._events[rank]
            if e.kind == "collective"
        )

    def bytes_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]``: one-sided bytes moved between rank pairs."""
        matrix = [[0] * self.n_ranks for _ in range(self.n_ranks)]
        for event in self.events(kind="put"):
            matrix[event.rank][event.detail["target"]] += event.detail["bytes"]
        return matrix

    def network_bytes(self) -> int:
        """Total bytes that crossed the network (self-puts excluded)."""
        return sum(
            e.detail["bytes"]
            for e in self.events(kind="put")
            if e.detail["target"] != e.rank
        )

    # -- rendering ------------------------------------------------------------

    def summary(self) -> str:
        """A compact per-rank report of the run's communication behaviour."""
        lines = [
            f"cluster trace: {self.n_ranks} ranks, "
            f"{self.collective_count()} collective epochs, "
            f"{self.network_bytes()} network bytes"
        ]
        matrix = self.bytes_matrix()
        for rank in range(self.n_ranks):
            sent = sum(matrix[rank][d] for d in range(self.n_ranks) if d != rank)
            received = sum(matrix[s][rank] for s in range(self.n_ranks) if s != rank)
            registrations = len(
                [e for e in self._events[rank] if e.kind == "win_create"]
            )
            lines.append(
                f"  rank {rank}: stall={self.stall_seconds(rank) * 1e6:9.1f} µs  "
                f"sent={sent:>10}  received={received:>10}  windows={registrations}"
            )
        return "\n".join(lines)
