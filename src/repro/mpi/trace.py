"""Event tracing for the simulated cluster.

With ``SimCluster(..., trace=True)`` the substrate records every collective
(with each rank's arrival time and the synchronized completion time — i.e.
the stall each rank suffered), every one-sided put (source, target, rows,
bytes), and every window registration.  The resulting
:class:`ClusterTrace` answers the questions one debugs distributed plans
with: who stalls where, who sends how much to whom, how many collective
epochs a plan really has.

Events are :class:`~repro.observability.events.SimEvent` subclasses with
*typed* per-kind payloads (:class:`~repro.observability.events.PutDetail`
and friends), so they merge with operator spans in the Chrome-trace
exporter (:mod:`repro.observability.chrome_trace`) and query code gets
attributes instead of ad-hoc dict keys.

Tracing is off by default; it costs a little memory per event and nothing
else (simulated time is unaffected).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.observability.events import (
    CollectiveDetail,
    EventDetail,
    GenericDetail,
    SimEvent,
    detail_for,
)

__all__ = ["TraceEvent", "ClusterTrace", "RankCommStats"]


@dataclass(frozen=True)
class TraceEvent(SimEvent):
    """One recorded substrate event on one rank.

    Attributes:
        rank: The rank the event happened on (for puts: the sender).
        kind: ``collective`` | ``put`` | ``win_create``.
        label: Collective tag, or ``put->k`` / window element type.
        start: Simulated time the rank entered the event.
        end: Simulated time the event completed for this rank.
        detail: Typed kind-specific payload —
            :class:`~repro.observability.events.PutDetail`,
            :class:`~repro.observability.events.CollectiveDetail`, or
            :class:`~repro.observability.events.WindowDetail`.  A plain
            mapping passed here is converted to the typed form.
    """

    detail: EventDetail = field(default_factory=GenericDetail)

    def __post_init__(self) -> None:
        if not isinstance(self.detail, EventDetail):
            object.__setattr__(self, "detail", detail_for(self.kind, self.detail))

    def chrome_args(self) -> dict[str, Any]:
        return self.detail.as_dict()


@dataclass(frozen=True)
class RankCommStats:
    """One rank's communication behaviour over a traced run."""

    rank: int
    stall_seconds: float
    bytes_sent: int
    bytes_received: int
    window_registrations: int
    collectives: int


class ClusterTrace:
    """Thread-safe event store for one SPMD run."""

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks
        self._events: list[list[TraceEvent]] = [[] for _ in range(n_ranks)]
        self._lock = threading.Lock()

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events[event.rank].append(event)

    # -- queries -----------------------------------------------------------

    def events(self, rank: int | None = None, kind: str | None = None) -> list[TraceEvent]:
        """Events of one rank (or all), optionally filtered by kind."""
        ranks = range(self.n_ranks) if rank is None else (rank,)
        out: list[TraceEvent] = []
        for r in ranks:
            out.extend(
                e for e in self._events[r] if kind is None or e.kind == kind
            )
        return out

    def collective_count(self) -> int:
        """Number of collective epochs (same on every rank by construction)."""
        per_rank = [
            len([e for e in self._events[r] if e.kind == "collective"])
            for r in range(self.n_ranks)
        ]
        return max(per_rank) if per_rank else 0

    def stall_seconds(self, rank: int) -> float:
        """Total time ``rank`` waited inside collectives for its peers."""
        return sum(
            e.detail.stall
            for e in self._events[rank]
            if isinstance(e.detail, CollectiveDetail)
        )

    def bytes_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]``: one-sided bytes moved between rank pairs."""
        matrix = [[0] * self.n_ranks for _ in range(self.n_ranks)]
        for event in self.events(kind="put"):
            matrix[event.rank][event.detail.target] += event.detail.bytes
        return matrix

    def network_bytes(self) -> int:
        """Total bytes that crossed the network (self-puts excluded)."""
        return sum(
            e.detail.bytes
            for e in self.events(kind="put")
            if e.detail.target != e.rank
        )

    def rank_summary(self, rank: int) -> RankCommStats:
        """Typed per-rank totals (the rows of :meth:`summary`)."""
        matrix = self.bytes_matrix()
        return RankCommStats(
            rank=rank,
            stall_seconds=self.stall_seconds(rank),
            bytes_sent=sum(matrix[rank][d] for d in range(self.n_ranks) if d != rank),
            bytes_received=sum(
                matrix[s][rank] for s in range(self.n_ranks) if s != rank
            ),
            window_registrations=len(
                [e for e in self._events[rank] if e.kind == "win_create"]
            ),
            collectives=len(
                [e for e in self._events[rank] if e.kind == "collective"]
            ),
        )

    # -- rendering ------------------------------------------------------------

    def summary(self) -> str:
        """A compact per-rank report of the run's communication behaviour."""
        lines = [
            f"cluster trace: {self.n_ranks} ranks, "
            f"{self.collective_count()} collective epochs, "
            f"{self.network_bytes()} network bytes"
        ]
        for rank in range(self.n_ranks):
            stats = self.rank_summary(rank)
            lines.append(
                f"  rank {rank}: stall={stats.stall_seconds * 1e6:9.1f} µs  "
                f"sent={stats.bytes_sent:>10}  received={stats.bytes_received:>10}  "
                f"windows={stats.window_registrations}"
            )
        return "\n".join(lines)
