PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke profile examples

test:
	$(PYTHON) -m pytest -x -q

# Static-analysis gate: the shipped plans and examples must lint clean,
# and the analyzer's own tests must pass.
lint:
	$(PYTHON) -m repro lint all examples/
	$(PYTHON) -m pytest -q tests/test_analysis_typeflow.py \
		tests/test_analysis_commsafety.py tests/test_analysis_lint_cli.py

bench:
	$(PYTHON) -m repro bench all

# Wall-clock (not simulated) fused-vs-interpreted check; writes
# BENCH_fused.json and fails if fused is slower on the micro pipeline or
# if the disabled-profiler overhead exceeds its 5% budget.
bench-smoke:
	$(PYTHON) -m repro.bench.smoke --out BENCH_fused.json

# EXPLAIN ANALYZE a TPC-H query and export the merged operator+substrate
# Chrome trace (open profile_trace.json in chrome://tracing or Perfetto).
profile:
	$(PYTHON) -m repro profile tpch --query 12 --machines 4 \
		--chrome-out profile_trace.json

examples:
	for f in examples/*.py; do $(PYTHON) $$f || exit 1; done
