PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke bench-compare chaos-soak sanitize-soak serve-soak serve-chaos slo-smoke profile examples

test:
	$(PYTHON) -m pytest -x -q

# Static-analysis gate: the shipped plans and examples must lint clean,
# and the analyzer's own tests must pass.
lint:
	$(PYTHON) -m repro lint all examples/
	$(PYTHON) -m pytest -q tests/test_analysis_typeflow.py \
		tests/test_analysis_commsafety.py tests/test_analysis_lint_cli.py \
		tests/test_symbolic.py

bench:
	$(PYTHON) -m repro bench all

# Wall-clock (not simulated) fused-vs-interpreted check; writes
# BENCH_fused.json (and appends a run record to BENCH_history.jsonl) and
# fails if fused is slower on the micro pipeline or if the
# disabled-profiler overhead exceeds its 5% budget.
bench-smoke:
	$(PYTHON) -m repro.bench.smoke --out BENCH_fused.json

# Benchmark-regression gate: record the paper-figure suite into
# BENCH_history.jsonl and diff it against the seed baseline with
# noise-aware per-benchmark thresholds; exit 1 on regression.
bench-compare:
	$(PYTHON) -m repro bench record
	$(PYTHON) -m repro bench compare --baseline seed

# Seeded fault-injection soak: every builtin plan and TPC-H query must
# stay bit-identical to its fault-free run under transient comm faults,
# a transient mid-stage rank crash, a permanent crash (degraded n-1
# rerun), and planner-level memory pressure.  Exit 1 on any divergence.
chaos-soak:
	$(PYTHON) -m repro chaos all --seeds 3 --mode both
	$(PYTHON) -m repro chaos all --seeds 1 --crash-rank 2 --crash-after 6
	$(PYTHON) -m repro chaos all --seeds 1 --crash-rank 1 --crash-after 4 \
		--permanent
	$(PYTHON) -m repro chaos q14 --seeds 1 --strategy broadcast \
		--memory-pressure

# Runtime-sanitizer soak: every builtin plan and TPC-H query runs with the
# MOD050-MOD053 sanitizer armed under the full chaos matrix (fault-free,
# transient faults, permanent-crash degrade, memory pressure); the report
# must be clean and the results bit-identical to the unsanitized run.
sanitize-soak:
	$(PYTHON) -m repro sanitize all
	$(PYTHON) -m repro sanitize join q14 --mode interpreted \
		--policies clean transient

# Concurrent-serving soak: 16 interleaved TPC-H queries on one shared
# cluster must be bit-identical to serial runs (clean and under transient
# chaos), with no tenant starved beyond its fair-share weight.
serve-soak:
	$(PYTHON) -m repro serve --queries 16
	$(PYTHON) -m repro serve --queries 16 --chaos

# Query-lifecycle robustness gate: the full chaos matrix (transient,
# crash, straggler, flaky-with-retries) must stay bit-identical to
# serial with an exactly reconciled tenant ledger, and the poison-plan
# breaker scenario must trip the circuit while bystander queries on the
# same server keep matching their serial reference.  Exports the merged
# multi-query Chrome trace and the per-profile journal JSON as run
# artifacts (open serve_trace.json in chrome://tracing or Perfetto).
serve-chaos:
	$(PYTHON) -m repro serve --matrix --queries 8 --sf 0.005 \
		--chrome-out serve_trace.json --journal-out serve_journals.json

# SLO latency gate: serve a mixed batch and fail if any tenant or
# prepared-plan handle burns past its error budget on the simulated axis.
slo-smoke:
	$(PYTHON) -m repro slo --queries 16 --target 0.01 --objective 0.99

# EXPLAIN ANALYZE a TPC-H query and export the merged operator+substrate
# Chrome trace (open profile_trace.json in chrome://tracing or Perfetto).
profile:
	$(PYTHON) -m repro profile tpch --query 12 --machines 4 \
		--chrome-out profile_trace.json

examples:
	for f in examples/*.py; do $(PYTHON) $$f || exit 1; done
